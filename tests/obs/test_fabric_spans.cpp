// Verifies the data-path trace instrumentation against real traffic: WQE
// fetch and doorbell pickup latency appear as complete ('X') spans with the
// configured fetch cost as their duration, and every switch traversal of
// every packet leaves a "pkt.hop" instant carrying the switch id.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "../fabric/fabric_fixture.hpp"
#include "obs/trace.hpp"

namespace resex::obs {
namespace {

using fabric::testing::Endpoint;
using fabric::testing::TwoNodeWorld;
using fabric::testing::make_endpoint_on;
using sim::Task;

/// Collect all trace events with the given name, oldest first.
std::vector<TraceEvent> events_named(const Tracer& tracer, const char* name) {
  std::vector<TraceEvent> out;
  tracer.for_each([&out, name](const TraceEvent& ev) {
    if (std::string_view(ev.name) == name) out.push_back(ev);
  });
  return out;
}

fabric::SendWr write_wr(const Endpoint& src, const Endpoint& dst,
                        std::uint32_t bytes) {
  fabric::SendWr wr;
  wr.opcode = fabric::Opcode::kRdmaWriteWithImm;
  wr.local_addr = src.buf;
  wr.lkey = src.mr.lkey;
  wr.length = bytes;
  wr.remote_addr = dst.buf;
  wr.rkey = dst.mr.rkey;
  return wr;
}

TEST(FabricSpans, DoorbellPickupLatencyIsTraced) {
  TwoNodeWorld world;
  world.sim.tracer().enable(4096);
  auto [src, dst] = world.make_connected_pair();
  dst.qp->post_recv(fabric::RecvWr{.wr_id = 1});
  world.sim.spawn([](Endpoint& s, Endpoint& d) -> Task {
    co_await s.verbs->post_send(*s.qp, write_wr(s, d, 4096));
    (void)co_await s.verbs->next_cqe(*s.send_cq);
  }(src, dst));
  world.sim.run_until(10 * sim::kMillisecond);

  const auto spans = events_named(world.sim.tracer(), "hca.doorbell");
  ASSERT_FALSE(spans.empty());
  const auto& cfg = world.fabric.config();
  for (const auto& ev : spans) {
    EXPECT_EQ(ev.phase, 'X');
    // Unstalled pickup: duration is exactly the configured fetch cost.
    EXPECT_EQ(ev.dur, cfg.doorbell_latency + cfg.wqe_processing);
  }
  // The span argument carries how many WQEs the doorbell announced.
  EXPECT_DOUBLE_EQ(spans.front().b.value, 1.0);
}

TEST(FabricSpans, DirectWqeInjectionIsTraced) {
  TwoNodeWorld world;
  world.sim.tracer().enable(4096);
  auto [src, dst] = world.make_connected_pair();
  dst.qp->post_recv(fabric::RecvWr{.wr_id = 1});
  world.sim.schedule_at(0, [&src = src, &dst = dst, &world] {
    world.hca_a->post_send(*src.qp, write_wr(src, dst, 2048));
  });
  world.sim.run_until(10 * sim::kMillisecond);

  const auto spans = events_named(world.sim.tracer(), "hca.wqe_fetch");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans.front().phase, 'X');
  const auto& cfg = world.fabric.config();
  EXPECT_EQ(spans.front().dur, cfg.doorbell_latency + cfg.wqe_processing);
  EXPECT_DOUBLE_EQ(spans.front().a.value,
                   static_cast<double>(src.qp->num()));
}

TEST(FabricSpans, EveryCrossSwitchPacketLeavesHopInstants) {
  // Two switches, one trunk: every packet traverses the source switch (which
  // forwards on the trunk) and the destination switch (which delivers to the
  // downlink) — two "pkt.hop" instants per data packet.
  sim::Simulation sim;
  sim.tracer().enable(16384);
  hv::Node node_a{sim, "A", 8};
  hv::Node node_b{sim, "B", 8};
  fabric::Fabric fab(sim, fabric::testing::test_config());
  const std::uint32_t sw1 = fab.add_switch();
  fabric::Hca& hca_a = fab.add_node(node_a);
  fabric::Hca& hca_b = fab.add_node(node_b, sw1);
  fab.add_trunk(0, sw1);

  Endpoint src = make_endpoint_on(node_a, hca_a, "vmA");
  Endpoint dst = make_endpoint_on(node_b, hca_b, "vmB");
  fabric::Fabric::connect(*src.qp, *dst.qp);
  dst.qp->post_recv(fabric::RecvWr{.wr_id = 1});

  const std::uint32_t kBytes = 8 * 1024;  // 8 packets at the 1 KiB MTU
  sim.spawn([](Endpoint& s, Endpoint& d, std::uint32_t bytes) -> Task {
    co_await s.verbs->post_send(*s.qp, write_wr(s, d, bytes));
    (void)co_await s.verbs->next_cqe(*s.send_cq);
  }(src, dst, kBytes));
  sim.run_until(10 * sim::kMillisecond);

  const auto hops = events_named(sim.tracer(), "pkt.hop");
  const std::uint32_t packets = kBytes / fab.config().mtu_bytes;
  // At least two traversals per data packet (acks may add more).
  EXPECT_GE(hops.size(), 2u * packets);
  std::map<double, std::size_t> per_switch;
  for (const auto& ev : hops) {
    EXPECT_EQ(ev.phase, 'i');
    per_switch[ev.a.value]++;
  }
  // Both switches saw every data packet.
  ASSERT_EQ(per_switch.size(), 2u);
  EXPECT_GE(per_switch[0.0], packets);
  EXPECT_GE(per_switch[static_cast<double>(sw1)], packets);
  // And the hop counter agrees with the trace.
  EXPECT_EQ(
      static_cast<std::size_t>(
          sim.metrics().counter("fabric.switch_hops").value()),
      hops.size());
}

TEST(FabricSpans, PfcPausesLeaveInstantsAndCompleteSpans) {
  // Two senders incast one receiver through a tiny lossless port: the
  // receiver downlink must assert XOFF ("fabric.pause" instant), later
  // release it ("fabric.resume"), and every completed pause episode on a
  // feeder must appear as a "fabric.paused" complete span whose durations
  // sum to exactly the feeders' accounted paused time.
  sim::Simulation sim;
  sim.tracer().enable(1 << 16);
  hv::Node node_a{sim, "A", 8};
  hv::Node node_b{sim, "B", 8};
  hv::Node node_c{sim, "C", 8};
  auto cfg = fabric::testing::test_config();
  cfg.port_buffer_pkts = 8;
  cfg.pfc_enabled = true;
  fabric::Fabric fab(sim, cfg);
  fabric::Hca& hca_a = fab.add_node(node_a);
  fabric::Hca& hca_b = fab.add_node(node_b);
  fabric::Hca& hca_c = fab.add_node(node_c);

  Endpoint src_a = make_endpoint_on(node_a, hca_a, "vmA");
  Endpoint src_b = make_endpoint_on(node_b, hca_b, "vmB");
  Endpoint dst_a = make_endpoint_on(node_c, hca_c, "vmCa");
  Endpoint dst_b = make_endpoint_on(node_c, hca_c, "vmCb");
  fabric::Fabric::connect(*src_a.qp, *dst_a.qp);
  fabric::Fabric::connect(*src_b.qp, *dst_b.qp);
  dst_a.qp->post_recv(fabric::RecvWr{.wr_id = 1});
  dst_b.qp->post_recv(fabric::RecvWr{.wr_id = 2});
  sim.schedule_at(0, [&] {
    hca_a.post_send(*src_a.qp, write_wr(src_a, dst_a, 48 * 1024));
    hca_b.post_send(*src_b.qp, write_wr(src_b, dst_b, 48 * 1024));
  });
  sim.run_until(50 * sim::kMillisecond);

  const auto pauses = events_named(sim.tracer(), "fabric.pause");
  const auto resumes = events_named(sim.tracer(), "fabric.resume");
  ASSERT_FALSE(pauses.empty());
  ASSERT_FALSE(resumes.empty());
  for (const auto& ev : pauses) {
    EXPECT_EQ(ev.phase, 'i');
    EXPECT_STREQ(ev.category, "congestion");
    // The instant carries the port occupancy that tripped (or released) the
    // threshold; at XOFF assert time it cannot be empty.
    EXPECT_GT(ev.a.value, 0.0);
  }
  for (const auto& ev : resumes) EXPECT_EQ(ev.phase, 'i');
  // One instant per XOFF assertion, and the metrics layer agrees.
  EXPECT_EQ(pauses.size(), hca_c.downlink().pauses_sent());
  EXPECT_EQ(static_cast<std::size_t>(
                sim.metrics().counter("fabric.pfc_pauses").value()),
            pauses.size());
  // Every pause was released once the incast drained.
  EXPECT_EQ(pauses.size(), resumes.size());

  const auto spans = events_named(sim.tracer(), "fabric.paused");
  ASSERT_FALSE(spans.empty());
  sim::SimDuration traced = 0;
  for (const auto& ev : spans) {
    EXPECT_EQ(ev.phase, 'X');
    EXPECT_STREQ(ev.category, "congestion");
    EXPECT_GT(ev.dur, 0);
    traced += ev.dur;
  }
  // The spans are the feeders' pause episodes: their durations must add up
  // to exactly the paused time the channels accounted (nothing left paused).
  // A pause frame reaches *every* channel feeding the switch — including the
  // receiver's own idle uplink — so sum all three.
  EXPECT_FALSE(hca_a.uplink().paused());
  EXPECT_FALSE(hca_b.uplink().paused());
  EXPECT_FALSE(hca_c.uplink().paused());
  EXPECT_EQ(traced, hca_a.uplink().paused_time() +
                        hca_b.uplink().paused_time() +
                        hca_c.uplink().paused_time());
}

}  // namespace
}  // namespace resex::obs
