#include "core/resos.hpp"

#include <gtest/gtest.h>

namespace resex::core {
namespace {

TEST(ResosLedger, ConfigValidation) {
  ResosConfig bad;
  bad.epoch = 999;
  bad.interval = 1000;
  EXPECT_THROW(ResosLedger{bad}, std::invalid_argument);
}

TEST(ResosLedger, PaperAllocationNumbers) {
  // Section VI-A: 100,000 CPU Resos per epoch; 1,048,576 I/O Resos shared.
  ResosLedger ledger;
  ledger.add_vm(1);
  ledger.add_vm(2);
  EXPECT_DOUBLE_EQ(ledger.allocation(1), 100000.0 + 1048576.0 / 2.0);
  EXPECT_DOUBLE_EQ(ledger.allocation(2), 100000.0 + 1048576.0 / 2.0);
  EXPECT_EQ(ledger.config().intervals_per_epoch(), 1000u);
}

TEST(ResosLedger, WeightedShares) {
  ResosLedger ledger;
  ledger.add_vm(1, 3.0);
  ledger.add_vm(2, 1.0);
  EXPECT_DOUBLE_EQ(ledger.allocation(1), 100000.0 + 1048576.0 * 0.75);
  EXPECT_DOUBLE_EQ(ledger.allocation(2), 100000.0 + 1048576.0 * 0.25);
}

TEST(ResosLedger, AddVmValidation) {
  ResosLedger ledger;
  ledger.add_vm(1);
  EXPECT_THROW(ledger.add_vm(1), std::logic_error);
  EXPECT_THROW(ledger.add_vm(2, 0.0), std::invalid_argument);
  EXPECT_THROW(ledger.add_vm(2, -1.0), std::invalid_argument);
}

TEST(ResosLedger, DeductLowersBalance) {
  ResosLedger ledger;
  ledger.add_vm(1);
  const double start = ledger.balance(1);
  const double after = ledger.deduct(1, 1000.0);
  EXPECT_DOUBLE_EQ(after, start - 1000.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), after);
}

TEST(ResosLedger, BalanceClampsAtZero) {
  ResosLedger ledger;
  ledger.add_vm(1);
  EXPECT_DOUBLE_EQ(ledger.deduct(1, 1e12), 0.0);
  EXPECT_DOUBLE_EQ(ledger.fraction_remaining(1), 0.0);
}

TEST(ResosLedger, DeductValidation) {
  ResosLedger ledger;
  ledger.add_vm(1);
  EXPECT_THROW((void)ledger.deduct(2, 1.0), std::out_of_range);
  EXPECT_THROW((void)ledger.deduct(1, -1.0), std::invalid_argument);
}

TEST(ResosLedger, ChargeRateMultipliesDeductions) {
  ResosLedger ledger;
  ledger.add_vm(1);
  const double start = ledger.balance(1);
  ledger.set_charge_rate(1, 3.0);
  EXPECT_DOUBLE_EQ(ledger.charge_rate(1), 3.0);
  (void)ledger.deduct(1, 100.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), start - 300.0);
}

TEST(ResosLedger, ChargeRateFlooredAtBase) {
  ResosLedger ledger;
  ledger.add_vm(1);
  ledger.set_charge_rate(1, 0.1);
  EXPECT_DOUBLE_EQ(ledger.charge_rate(1), 1.0);
  EXPECT_THROW(ledger.set_charge_rate(9, 2.0), std::out_of_range);
}

TEST(ResosLedger, ReplenishRestoresAllocationAndDiscardsLeftover) {
  ResosLedger ledger;
  ledger.add_vm(1);
  (void)ledger.deduct(1, 50000.0);
  ledger.replenish();
  EXPECT_DOUBLE_EQ(ledger.balance(1), ledger.allocation(1));
  EXPECT_DOUBLE_EQ(ledger.fraction_remaining(1), 1.0);
}

TEST(ResosLedger, ReplenishKeepsChargeRates) {
  ResosLedger ledger;
  ledger.add_vm(1);
  ledger.set_charge_rate(1, 2.5);
  ledger.replenish();
  EXPECT_DOUBLE_EQ(ledger.charge_rate(1), 2.5);
}

TEST(ResosLedger, LateVmReducesOthersShareAtReplenish) {
  ResosLedger ledger;
  ledger.add_vm(1);
  EXPECT_DOUBLE_EQ(ledger.allocation(1), 100000.0 + 1048576.0);
  ledger.add_vm(2);
  // Allocations shrink immediately; vm1's balance updates at replenish.
  EXPECT_DOUBLE_EQ(ledger.allocation(1), 100000.0 + 1048576.0 / 2.0);
  ledger.replenish();
  EXPECT_DOUBLE_EQ(ledger.balance(1), ledger.allocation(1));
}

TEST(ResosLedger, VmsListedSorted) {
  ResosLedger ledger;
  ledger.add_vm(5);
  ledger.add_vm(2);
  ledger.add_vm(9);
  EXPECT_EQ(ledger.vms(), (std::vector<hv::DomainId>{2, 5, 9}));
  EXPECT_TRUE(ledger.tracks(5));
  EXPECT_FALSE(ledger.tracks(4));
}

}  // namespace
}  // namespace resex::core
