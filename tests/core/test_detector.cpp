#include "core/detector.hpp"

#include <gtest/gtest.h>

namespace resex::core {
namespace {

using Snapshot = benchex::LatencyAgent::Snapshot;

Snapshot snap(double mean, std::uint64_t reports) {
  return Snapshot{mean, 0.0, reports};
}

TEST(Detector, ConfiguredBaselineWithinSlaIsZero) {
  InterferenceDetector d;
  d.add_vm(1, 200.0);
  EXPECT_DOUBLE_EQ(d.observe(1, snap(205.0, 1)), 0.0);
  EXPECT_DOUBLE_EQ(d.observe(1, snap(229.0, 2)), 0.0);  // < 15% threshold
}

TEST(Detector, ViolationReturnsPercentIncrease) {
  InterferenceDetector d;
  d.add_vm(1, 200.0);
  EXPECT_NEAR(d.observe(1, snap(300.0, 1)), 50.0, 1e-9);
  EXPECT_NEAR(d.observe(1, snap(400.0, 2)), 100.0, 1e-9);
}

TEST(Detector, InterferencePctCapped) {
  InterferenceDetector d;
  d.add_vm(1, 10.0);
  EXPECT_DOUBLE_EQ(d.observe(1, snap(10000.0, 1)), 400.0);
}

TEST(Detector, StaleSnapshotIgnored) {
  InterferenceDetector d;
  d.add_vm(1, 200.0);
  EXPECT_GT(d.observe(1, snap(500.0, 1)), 0.0);
  // Same report count: no fresh data arrived, do not re-flag.
  EXPECT_DOUBLE_EQ(d.observe(1, snap(500.0, 1)), 0.0);
}

TEST(Detector, LearnsBaselineFromCleanIntervals) {
  SlaConfig cfg;
  cfg.learn_intervals = 4;
  InterferenceDetector d(cfg);
  d.add_vm(1);
  EXPECT_FALSE(d.has_baseline(1));
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_DOUBLE_EQ(d.observe(1, snap(200.0 + i, i)), 0.0);
  }
  EXPECT_TRUE(d.has_baseline(1));
  EXPECT_NEAR(d.baseline(1), 202.5, 1e-9);
  EXPECT_GT(d.observe(1, snap(300.0, 5)), 0.0);
}

TEST(Detector, CustomThreshold) {
  SlaConfig cfg;
  cfg.threshold_pct = 50.0;
  InterferenceDetector d(cfg);
  d.add_vm(1, 100.0);
  EXPECT_DOUBLE_EQ(d.observe(1, snap(140.0, 1)), 0.0);
  EXPECT_NEAR(d.observe(1, snap(160.0, 2)), 60.0, 1e-9);
}

TEST(Detector, Validation) {
  InterferenceDetector d;
  d.add_vm(1, 100.0);
  EXPECT_THROW(d.add_vm(1), std::logic_error);
  EXPECT_THROW((void)d.observe(9, snap(1.0, 1)), std::out_of_range);
  EXPECT_THROW((void)d.baseline(9), std::out_of_range);
  d.add_vm(2);
  EXPECT_THROW((void)d.baseline(2), std::out_of_range);  // still learning
}

}  // namespace
}  // namespace resex::core
