// Integration tests: the full ResEx loop (IBMon -> detector -> policy ->
// XenStat caps) over live BenchEx traffic. These reproduce, at test scale,
// the qualitative claims of the paper's Section VII.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace resex::core {
namespace {

using namespace resex::sim::literals;

ScenarioConfig quick(PolicyKind policy, bool with_interferer = true) {
  ScenarioConfig cfg;
  cfg.policy = policy;
  cfg.with_interferer = with_interferer;
  cfg.warmup = 100_ms;
  cfg.duration = 900_ms;
  return cfg;
}

TEST(Controller, TimelineRecordsEveryIntervalAndVm) {
  auto cfg = quick(PolicyKind::kFreeMarket);
  cfg.duration = 400_ms;
  const auto r = run_scenario(cfg);
  // ~500 intervals x 2 VMs.
  EXPECT_GT(r.timeline.size(), 800u);
  bool saw_rep = false, saw_intf = false;
  for (const auto& rec : r.timeline) {
    saw_rep |= rec.vm == r.reporting_vm_id;
    saw_intf |= rec.vm == r.interferer_vm_id;
    EXPECT_GE(rec.cap, 1.0);
    EXPECT_LE(rec.cap, 100.0);
    EXPECT_GE(rec.resos_balance, 0.0);
  }
  EXPECT_TRUE(saw_rep);
  EXPECT_TRUE(saw_intf);
}

TEST(Controller, FreeMarketDrainsInterfererResosAndStepsCapDown) {
  const auto r = run_scenario(quick(PolicyKind::kFreeMarket));
  // Find the interferer's minimum balance fraction and cap over the run.
  double min_balance = 1e18, min_cap = 100.0;
  double rep_min_cap = 100.0;
  for (const auto& rec : r.timeline) {
    if (rec.vm == r.interferer_vm_id) {
      min_balance = std::min(min_balance, rec.resos_balance);
      min_cap = std::min(min_cap, rec.cap);
    } else if (rec.vm == r.reporting_vm_id) {
      rep_min_cap = std::min(rep_min_cap, rec.cap);
    }
  }
  // The 2MB VM exhausts its allocation within the epoch and gets throttled.
  EXPECT_LT(min_balance, 0.2 * (100000.0 + 1048576.0 / 2.0));
  EXPECT_LT(min_cap, 95.0);
  // The reporting VM stays solvent and uncapped.
  EXPECT_DOUBLE_EQ(rep_min_cap, 100.0);
}

TEST(Controller, FreeMarketReplenishesAtEpoch) {
  auto cfg = quick(PolicyKind::kFreeMarket);
  cfg.warmup = 100_ms;
  cfg.duration = 1500_ms;  // crosses the t=1s epoch boundary
  const auto r = run_scenario(cfg);
  // Interferer balance right after the epoch boundary is back near full.
  double post_epoch_balance = 0.0;
  for (const auto& rec : r.timeline) {
    if (rec.vm == r.interferer_vm_id && rec.at > 1_s &&
        rec.at < 1_s + 20_ms) {
      post_epoch_balance = std::max(post_epoch_balance, rec.resos_balance);
    }
  }
  EXPECT_GT(post_epoch_balance, 0.8 * (100000.0 + 1048576.0 / 2.0));
}

TEST(Controller, IOSharesRaisesInterfererPriceOnViolation) {
  const auto r = run_scenario(quick(PolicyKind::kIOShares));
  double max_rate_intf = 0.0, max_rate_rep = 0.0, min_cap_intf = 100.0;
  bool saw_violation = false;
  for (const auto& rec : r.timeline) {
    if (rec.vm == r.interferer_vm_id) {
      max_rate_intf = std::max(max_rate_intf, rec.charge_rate);
      min_cap_intf = std::min(min_cap_intf, rec.cap);
    } else {
      max_rate_rep = std::max(max_rate_rep, rec.charge_rate);
      saw_violation |= rec.intf_pct > 0.0;
    }
  }
  EXPECT_TRUE(saw_violation);
  EXPECT_GT(max_rate_intf, 1.5);
  EXPECT_LT(min_cap_intf, 70.0);
  // Congestion pricing is targeted: the suffering VM's price never rises.
  EXPECT_DOUBLE_EQ(max_rate_rep, 1.0);
}

TEST(Controller, TwoVictimsBothProtectedByIOShares) {
  // The Algorithm 2 loop iterates over all monitored VMs: with two
  // latency-sensitive VMs suffering, both report violations, both direct
  // the congestion charge at the same bulk sender, and both recover.
  ScenarioConfig cfg;
  cfg.warmup = 100_ms;
  cfg.duration = 1000_ms;
  cfg.reporting_count = 2;

  const auto interfered = run_scenario(cfg);
  auto ios_cfg = cfg;
  ios_cfg.policy = PolicyKind::kIOShares;
  const auto ios = run_scenario(ios_cfg);

  ASSERT_EQ(ios.reporting.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_LT(ios.reporting[i].client_mean_us,
              interfered.reporting[i].client_mean_us)
        << "victim " << i;
  }
  EXPECT_LT(ios.interferer_mbps, 0.6 * interfered.interferer_mbps);
}

TEST(Controller, MonitorAfterStartRejected) {
  Testbed tb;
  auto& pair = tb.deploy_pair(reporting_config(), "r");
  ibmon::IbMon mon(tb.sim());
  ResExController ctrl(tb.node_a(), mon,
                       std::make_unique<FreeMarketPolicy>());
  ctrl.monitor(pair.server_domain(), &pair.agent());
  ctrl.start();
  auto& pair2 = tb.deploy_pair(reporting_config(64 * 1024, 1000.0, 9), "r2");
  EXPECT_THROW(ctrl.monitor(pair2.server_domain(), nullptr),
               std::logic_error);
}

TEST(Controller, RequiresPolicy) {
  Testbed tb;
  ibmon::IbMon mon(tb.sim());
  EXPECT_THROW(ResExController(tb.node_a(), mon, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace resex::core
