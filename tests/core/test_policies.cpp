#include "core/policies.hpp"

#include <gtest/gtest.h>

namespace resex::core {
namespace {

VmObservation obs(hv::DomainId id, double cpu, double mtus,
                  double intf = 0.0, double epoch_remaining = 0.5) {
  VmObservation o;
  o.id = id;
  o.cpu_pct = cpu;
  o.mtus = mtus;
  o.intf_pct = intf;
  o.epoch_remaining = epoch_remaining;
  return o;
}

struct FreeMarketFixture : ::testing::Test {
  ResosLedger ledger;
  FreeMarketPolicy policy;
  void SetUp() override {
    ledger.add_vm(1);
    ledger.add_vm(2);
    ledger.replenish();  // sync balances to the two-VM allocations
  }
};

TEST_F(FreeMarketFixture, ChargesFixedRate) {
  const double start = ledger.balance(1);
  const auto vms = std::vector<VmObservation>{obs(1, 80.0, 500.0)};
  (void)policy.on_interval(vms[0], vms, ledger);
  EXPECT_DOUBLE_EQ(ledger.balance(1), start - 580.0);
}

TEST_F(FreeMarketFixture, FullCapWhileSolvent) {
  const auto vms = std::vector<VmObservation>{obs(1, 100.0, 1000.0)};
  const auto d = policy.on_interval(vms[0], vms, ledger);
  ASSERT_TRUE(d.new_cap.has_value());
  EXPECT_DOUBLE_EQ(*d.new_cap, 100.0);
}

TEST_F(FreeMarketFixture, ThrottlesWhenNearlyBroke) {
  // Drain VM 1 below the 10% watermark.
  (void)ledger.deduct(1, ledger.allocation(1) * 0.95);
  const auto vms = std::vector<VmObservation>{obs(1, 10.0, 10.0)};
  auto d = policy.on_interval(vms[0], vms, ledger);
  ASSERT_TRUE(d.new_cap.has_value());
  EXPECT_DOUBLE_EQ(*d.new_cap, 90.0);  // one 10% step
  d = policy.on_interval(vms[0], vms, ledger);
  EXPECT_DOUBLE_EQ(*d.new_cap, 81.0);  // compounding steps
}

TEST_F(FreeMarketFixture, NoThrottleNearEpochEnd) {
  (void)ledger.deduct(1, ledger.allocation(1) * 0.95);
  // Only 5% of the epoch left: let it coast to the replenish.
  const auto vms = std::vector<VmObservation>{obs(1, 10.0, 10.0, 0.0, 0.05)};
  const auto d = policy.on_interval(vms[0], vms, ledger);
  ASSERT_TRUE(d.new_cap.has_value());
  EXPECT_DOUBLE_EQ(*d.new_cap, 100.0);
}

TEST_F(FreeMarketFixture, CapFloored) {
  (void)ledger.deduct(1, ledger.allocation(1));
  const auto vms = std::vector<VmObservation>{obs(1, 10.0, 10.0)};
  std::optional<double> cap;
  for (int i = 0; i < 100; ++i) cap = policy.on_interval(vms[0], vms, ledger).new_cap;
  EXPECT_DOUBLE_EQ(*cap, 5.0);  // default min_cap
}

TEST_F(FreeMarketFixture, EpochRestoresCap) {
  (void)ledger.deduct(1, ledger.allocation(1));
  const auto vms = std::vector<VmObservation>{obs(1, 10.0, 10.0)};
  (void)policy.on_interval(vms[0], vms, ledger);
  ledger.replenish();
  policy.on_epoch_start(ledger);
  const auto d = policy.on_interval(vms[0], vms, ledger);
  EXPECT_DOUBLE_EQ(*d.new_cap, 100.0);
}

TEST_F(FreeMarketFixture, IgnoresInterferenceSignal) {
  // FreeMarket "does not limit the latency since it does not have access to
  // that information" (Section VII-D).
  const auto vms = std::vector<VmObservation>{obs(1, 10.0, 10.0, 300.0)};
  const auto d = policy.on_interval(vms[0], vms, ledger);
  EXPECT_DOUBLE_EQ(*d.new_cap, 100.0);
}

struct IOSharesFixture : ::testing::Test {
  ResosLedger ledger;
  IOSharesPolicy policy;
  void SetUp() override {
    ledger.add_vm(1);  // reporting VM
    ledger.add_vm(2);  // interferer
  }
  /// Run one controller pass: VM 1 reports intf_pct, VM 2 sends heavily.
  std::optional<double> pass(double intf_pct, double rep_mtus = 100.0,
                             double intf_mtus = 2000.0) {
    const std::vector<VmObservation> vms{obs(1, 90.0, rep_mtus, intf_pct),
                                         obs(2, 90.0, intf_mtus)};
    (void)policy.on_interval(vms[0], vms, ledger);
    return policy.on_interval(vms[1], vms, ledger).new_cap;
  }
};

TEST_F(IOSharesFixture, NoInterferenceKeepsFullCap) {
  const auto cap = pass(0.0);
  ASSERT_TRUE(cap.has_value());
  EXPECT_DOUBLE_EQ(*cap, 100.0);
  EXPECT_DOUBLE_EQ(policy.rate_of(2), 1.0);
}

TEST_F(IOSharesFixture, InterferenceRaisesInterfererRateAndLowersCap) {
  const auto cap = pass(100.0);  // latency doubled
  ASSERT_TRUE(cap.has_value());
  // IOShare = 2000/2100, r' = IOShare * 1.0 -> rate ~1.95, cap ~51%.
  EXPECT_NEAR(policy.rate_of(2), 1.0 + 2000.0 / 2100.0, 1e-9);
  EXPECT_NEAR(*cap, 100.0 / (1.0 + 2000.0 / 2100.0), 1e-6);
}

TEST_F(IOSharesFixture, RepeatedInterferenceCompounds) {
  (void)pass(100.0);
  const auto cap2 = pass(100.0);
  EXPECT_GT(policy.rate_of(2), 1.9);
  EXPECT_LT(*cap2, 40.0);
}

TEST_F(IOSharesFixture, CapFloored) {
  std::optional<double> cap;
  for (int i = 0; i < 50; ++i) cap = pass(400.0);
  EXPECT_DOUBLE_EQ(*cap, 2.0);  // default min_cap
}

TEST_F(IOSharesFixture, BacksOffWhenClean) {
  (void)pass(200.0);
  const double hot_rate = policy.rate_of(2);
  std::optional<double> cap;
  for (int i = 0; i < 400; ++i) cap = pass(0.0);
  EXPECT_LT(policy.rate_of(2), hot_rate * 0.01 + 1.01);
  EXPECT_GT(*cap, 99.0);  // cap recovered
}

TEST_F(IOSharesFixture, ChargesInterfererAtRaisedRate) {
  (void)pass(100.0);
  const double before = ledger.balance(2);
  (void)pass(0.0);  // next pass charges at the raised (decaying) rate
  const double spent = before - ledger.balance(2);
  EXPECT_GT(spent, 2090.0);  // (90 cpu + 2000 mtus) * rate > 1
}

TEST_F(IOSharesFixture, InterfererIsLargestOtherSender) {
  ledger.add_vm(3);
  const std::vector<VmObservation> vms{obs(1, 90.0, 100.0, 100.0),
                                       obs(2, 90.0, 500.0),
                                       obs(3, 90.0, 3000.0)};
  (void)policy.on_interval(vms[0], vms, ledger);
  (void)policy.on_interval(vms[1], vms, ledger);
  (void)policy.on_interval(vms[2], vms, ledger);
  EXPECT_DOUBLE_EQ(policy.rate_of(2), 1.0);
  EXPECT_GT(policy.rate_of(3), 1.5);
}

TEST(StaticReservation, AlwaysAppliesConfiguredCaps) {
  ResosLedger ledger;
  ledger.add_vm(1);
  ledger.add_vm(2);
  StaticReservationPolicy policy({{2, 25.0}});
  const std::vector<VmObservation> vms{obs(1, 50.0, 10.0),
                                       obs(2, 50.0, 10.0)};
  EXPECT_FALSE(policy.on_interval(vms[0], vms, ledger).new_cap.has_value());
  const auto cap = policy.on_interval(vms[1], vms, ledger).new_cap;
  ASSERT_TRUE(cap.has_value());
  EXPECT_DOUBLE_EQ(*cap, 25.0);
}

TEST(PolicyNames, Stable) {
  EXPECT_STREQ(FreeMarketPolicy{}.name(), "FreeMarket");
  EXPECT_STREQ(IOSharesPolicy{}.name(), "IOShares");
  EXPECT_STREQ(StaticReservationPolicy{{}}.name(), "StaticReservation");
}

}  // namespace
}  // namespace resex::core
