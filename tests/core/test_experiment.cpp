// End-to-end scenario tests mirroring the paper's evaluation claims:
//  - interference inflates latency/jitter (Figures 1-2),
//  - FreeMarket recovers part of it, IOShares nearly all (Figures 5, 7, 9),
//  - both back off in the no-interference cases (Figure 8),
//  - ResEx cuts interference-induced inflation by >= 30% (headline claim).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"

namespace resex::core {
namespace {

using namespace resex::sim::literals;

struct Outcomes {
  double base;
  double interfered;
  double freemarket;
  double ioshares;
};

const Outcomes& outcomes() {
  static const Outcomes o = [] {
    ScenarioConfig cfg;
    cfg.warmup = 100_ms;
    cfg.duration = 1200_ms;

    Outcomes out{};
    auto base_cfg = cfg;
    base_cfg.with_interferer = false;
    const auto base = run_scenario(base_cfg);
    out.base = base.reporting[0].client_mean_us;
    const double baseline_total = base.reporting[0].total_us;

    const auto intf = run_scenario(cfg);
    out.interfered = intf.reporting[0].client_mean_us;

    auto fm_cfg = cfg;
    fm_cfg.policy = PolicyKind::kFreeMarket;
    fm_cfg.baseline_mean_us = baseline_total;
    out.freemarket = run_scenario(fm_cfg).reporting[0].client_mean_us;

    auto ios_cfg = cfg;
    ios_cfg.policy = PolicyKind::kIOShares;
    ios_cfg.baseline_mean_us = baseline_total;
    out.ioshares = run_scenario(ios_cfg).reporting[0].client_mean_us;
    return out;
  }();
  return o;
}

TEST(Evaluation, InterferenceInflatesLatency) {
  const auto& o = outcomes();
  EXPECT_GT(o.interfered, 1.3 * o.base)
      << "base=" << o.base << " interfered=" << o.interfered;
}

TEST(Evaluation, FreeMarketImprovesOverInterfered) {
  const auto& o = outcomes();
  EXPECT_LT(o.freemarket, o.interfered)
      << "fm=" << o.freemarket << " intf=" << o.interfered;
}

TEST(Evaluation, IOSharesApproachesBase) {
  const auto& o = outcomes();
  EXPECT_LT(o.ioshares, o.freemarket + 1e-9)
      << "ios=" << o.ioshares << " fm=" << o.freemarket;
  EXPECT_LT(o.ioshares, 1.35 * o.base)
      << "ios=" << o.ioshares << " base=" << o.base;
}

TEST(Evaluation, HeadlineThirtyPercentReduction) {
  // "ResEx can reduce the latency interference by as much as 30%".
  const auto& o = outcomes();
  const double inflation = o.interfered - o.base;
  const double recovered = o.interfered - o.ioshares;
  EXPECT_GT(recovered, 0.3 * inflation)
      << "base=" << o.base << " intf=" << o.interfered
      << " ios=" << o.ioshares;
}

TEST(Evaluation, NoInterferenceCasesStayNearBase) {
  // Figure 8: 64KB+64KB and 64KB + slow 2MB must sit at base latency under
  // both policies (detect interference, but also back off without it).
  ScenarioConfig cfg;
  cfg.warmup = 100_ms;
  cfg.duration = 800_ms;

  auto base_cfg = cfg;
  base_cfg.with_interferer = false;
  const auto base = run_scenario(base_cfg);
  const double base_us = base.reporting[0].client_mean_us;
  const double baseline_total = base.reporting[0].total_us;

  for (const auto policy : {PolicyKind::kFreeMarket, PolicyKind::kIOShares}) {
    // Case 1: a second identical 64KB VM.
    auto twin = cfg;
    twin.with_interferer = true;
    twin.intf_buffer = 64 * 1024;
    twin.intf_rate = 2000.0;  // same open-loop rate as the reporting VM
    twin.policy = policy;
    twin.baseline_mean_us = baseline_total;
    const auto r1 = run_scenario(twin);
    EXPECT_LT(r1.reporting[0].client_mean_us, 1.25 * base_us)
        << to_string(policy) << " 64KB-64KB";

    // Case 2: the 2MB VM sending only ~10 requests/s.
    auto slow = cfg;
    slow.with_interferer = true;
    slow.intf_rate = 10.0;
    slow.policy = policy;
    slow.baseline_mean_us = baseline_total;
    const auto r2 = run_scenario(slow);
    EXPECT_LT(r2.reporting[0].client_mean_us, 1.25 * base_us)
        << to_string(policy) << " 64KB-2MB-nointf";
  }
}

TEST(Evaluation, StaticReservationHelpsButWastesWhenIdle) {
  ScenarioConfig cfg;
  cfg.warmup = 100_ms;
  cfg.duration = 800_ms;
  cfg.policy = PolicyKind::kStaticReservation;
  cfg.static_cap_pct = 5.0;
  cfg.baseline_mean_us = 150.0;
  const auto capped = run_scenario(cfg);

  auto uncapped_cfg = cfg;
  uncapped_cfg.policy = PolicyKind::kNone;
  const auto uncapped = run_scenario(uncapped_cfg);

  // The static cap protects the reporting VM...
  EXPECT_LT(capped.reporting[0].client_mean_us,
            uncapped.reporting[0].client_mean_us);
  // ...but strangles the interferer's throughput far below what dynamic
  // policies allow (the work-conserving argument of Section V).
  EXPECT_LT(capped.interferer_mbps, 0.6 * uncapped.interferer_mbps);
}

TEST(Evaluation, PriorityWeightsShiftFreeMarketThrottling) {
  // Section V-C: Resos "can also be distributed unequally, e.g., based on
  // priority of the VMs". Giving the reporting VM 3x the weight shrinks the
  // interferer's I/O allocation, so FreeMarket throttles it earlier and the
  // reporting VM fares better than under equal shares.
  ScenarioConfig cfg;
  cfg.warmup = 100_ms;
  cfg.duration = 1200_ms;
  cfg.policy = PolicyKind::kFreeMarket;
  cfg.baseline_mean_us = 150.0;

  const auto equal = run_scenario(cfg);
  auto weighted_cfg = cfg;
  weighted_cfg.reporting_weight = 3.0;
  const auto weighted = run_scenario(weighted_cfg);

  EXPECT_LT(weighted.interferer_mbps, equal.interferer_mbps);
  EXPECT_LT(weighted.reporting[0].client_mean_us,
            equal.reporting[0].client_mean_us)
      << "equal=" << equal.reporting[0].client_mean_us
      << " weighted=" << weighted.reporting[0].client_mean_us;
}

TEST(Evaluation, MeasureBaseHelper) {
  ScenarioConfig cfg;
  cfg.warmup = 100_ms;
  const double base = measure_base_total_us(cfg);
  EXPECT_GT(base, 100.0);
  EXPECT_LT(base, 250.0);
}

TEST(Evaluation, InterferenceShiftsTheWholeDistribution) {
  // Figure 1 at the distribution level: the interfered latency sample is
  // KS-distinguishable from the normal one at (far beyond) any reasonable
  // significance, while a same-seed rerun is KS-identical.
  ScenarioConfig cfg;
  cfg.warmup = 100_ms;
  cfg.duration = 500_ms;
  auto base_cfg = cfg;
  base_cfg.with_interferer = false;
  const auto base1 = run_scenario(base_cfg);
  const auto base2 = run_scenario(base_cfg);
  const auto intf = run_scenario(cfg);
  EXPECT_DOUBLE_EQ(
      sim::ks_statistic(base1.reporting[0].client_latency_us,
                        base2.reporting[0].client_latency_us),
      0.0);
  EXPECT_GT(sim::ks_statistic(base1.reporting[0].client_latency_us,
                              intf.reporting[0].client_latency_us),
            0.9);
}

TEST(Evaluation, ScenarioResultShapes) {
  ScenarioConfig cfg;
  cfg.warmup = 50_ms;
  cfg.duration = 300_ms;
  cfg.reporting_count = 2;
  const auto r = run_scenario(cfg);
  EXPECT_EQ(r.reporting.size(), 2u);
  ASSERT_TRUE(r.interferer.has_value());
  EXPECT_GT(r.interferer_mbps, 100.0);
  EXPECT_GT(r.reporting[0].requests, 100u);
  EXPECT_GT(r.reporting[0].client_latency_us.count(), 100u);
  EXPECT_TRUE(r.timeline.empty());  // no policy -> no controller
}

TEST(Evaluation, ScenarioCapturesTraceAndMetricsWhenAsked) {
  ScenarioConfig cfg;
  cfg.warmup = 20_ms;
  cfg.duration = 60_ms;
  cfg.policy = PolicyKind::kFreeMarket;  // exercise ibmon + controller spans
  cfg.trace_path = ::testing::TempDir() + "resex_scenario_trace.json";
  cfg.collect_metrics = true;
  const auto r = run_scenario(cfg);

  // The metrics snapshot rides along in the result, stamped at sim end.
  EXPECT_FALSE(r.metrics.samples.empty());
  EXPECT_EQ(r.metrics.at, cfg.warmup + cfg.duration);
  auto value_of = [&r](const std::string& name) -> double {
    for (const auto& s : r.metrics.samples) {
      if (s.name == name) return s.kind == obs::MetricKind::kHistogram
                                     ? static_cast<double>(s.count)
                                     : s.value;
    }
    return -1.0;
  };
  EXPECT_GT(value_of("fabric.transfers"), 0.0);
  EXPECT_GT(value_of("fabric.wire_latency_ns"), 0.0);
  EXPECT_GT(value_of("core.intervals"), 0.0);
  EXPECT_GT(value_of("ibmon.samples"), 0.0);

  // The trace file landed and shows all three layers plus the frame span.
  std::ifstream in(cfg.trace_path);
  ASSERT_TRUE(in.good()) << cfg.trace_path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string trace = ss.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"scenario\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"core\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"fabric\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"hv\""), std::string::npos);
  std::remove(cfg.trace_path.c_str());
}

TEST(Evaluation, PeriodicMetricsSnapshotsFormATimeSeries) {
  ScenarioConfig cfg;
  cfg.warmup = 20_ms;
  cfg.duration = 60_ms;
  cfg.collect_metrics = true;
  cfg.metrics_period = 10_ms;
  const auto r = run_scenario(cfg);
  // One snapshot per period over the 80 ms run (none at t=0).
  ASSERT_EQ(r.metrics_series.size(), 8u);
  for (std::size_t i = 0; i < r.metrics_series.size(); ++i) {
    EXPECT_EQ(r.metrics_series[i].at, (i + 1) * 10_ms);
    EXPECT_FALSE(r.metrics_series[i].samples.empty());
  }
  // Counters are cumulative, so the series is monotone in transfers.
  auto transfers = [](const obs::MetricsSnapshot& s) {
    for (const auto& m : s.samples) {
      if (m.name == "fabric.transfers") return m.value;
    }
    return -1.0;
  };
  EXPECT_GE(transfers(r.metrics_series.back()),
            transfers(r.metrics_series.front()));
  EXPECT_GT(transfers(r.metrics_series.back()), 0.0);

  // Without a period the series stays empty (snapshot-only behaviour).
  ScenarioConfig flat = cfg;
  flat.metrics_period = 0;
  EXPECT_TRUE(run_scenario(flat).metrics_series.empty());
}

TEST(Evaluation, EmptyFaultPlanLeavesScenarioByteIdentical) {
  // resex::fault is linked into every scenario run; with no plan armed the
  // fabric must keep its perfect-link fast path, bit for bit.
  ScenarioConfig cfg;
  cfg.warmup = 20_ms;
  cfg.duration = 60_ms;
  const auto plain = run_scenario(cfg);
  ScenarioConfig empty_faults = cfg;
  empty_faults.faults = "";  // explicit empty spec == no plan at all
  const auto faulted = run_scenario(empty_faults);
  EXPECT_EQ(plain.reporting[0].requests, faulted.reporting[0].requests);
  EXPECT_EQ(plain.reporting[0].client_mean_us,
            faulted.reporting[0].client_mean_us);
  EXPECT_EQ(plain.reporting[0].client_latency_us.values(),
            faulted.reporting[0].client_latency_us.values());
  EXPECT_EQ(plain.interferer_mbps, faulted.interferer_mbps);
}

TEST(Evaluation, UntracedScenarioRecordsNothing) {
  ScenarioConfig cfg;
  cfg.warmup = 20_ms;
  cfg.duration = 40_ms;
  const auto r = run_scenario(cfg);
  EXPECT_TRUE(r.metrics.samples.empty());  // collect_metrics defaults off
  EXPECT_FALSE(r.reporting.empty());
}

}  // namespace
}  // namespace resex::core
