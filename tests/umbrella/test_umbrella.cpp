// The umbrella header must compile standalone and expose the whole API.
#include "resex.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, ExposesEveryLayer) {
  resex::sim::Simulation sim;
  resex::sim::Rng rng(1);
  resex::mem::GuestMemory memory(1);
  EXPECT_EQ(memory.page_count(), 1u);
  EXPECT_GT(resex::finance::price(resex::finance::OptionSpec{}), 0.0);
  resex::core::ScenarioConfig cfg;
  EXPECT_EQ(resex::core::to_string(cfg.policy), std::string("none"));
  resex::fabric::FabricConfig fabric_cfg;
  EXPECT_EQ(fabric_cfg.mtu_bytes, 1024u);
  EXPECT_EQ(resex::hv::kDefaultSlice, 10 * resex::sim::kMillisecond);
}

}  // namespace
