#include "mem/guest_memory.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

namespace resex::mem {
namespace {

TEST(GuestMemory, RejectsZeroPages) {
  EXPECT_THROW(GuestMemory(0), std::invalid_argument);
}

TEST(GuestMemory, SizeAccounting) {
  GuestMemory m(4);
  EXPECT_EQ(m.page_count(), 4u);
  EXPECT_EQ(m.size_bytes(), 4u * kPageSize);
}

TEST(GuestMemory, StartsZeroed) {
  GuestMemory m(1);
  EXPECT_EQ(m.read_obj<std::uint64_t>(0), 0u);
  EXPECT_EQ(m.read_obj<std::uint64_t>(kPageSize - 8), 0u);
}

TEST(GuestMemory, WriteReadRoundTrip) {
  GuestMemory m(1);
  std::array<std::byte, 4> in{std::byte{1}, std::byte{2}, std::byte{3},
                              std::byte{4}};
  m.write(100, in);
  std::array<std::byte, 4> out{};
  m.read(100, out);
  EXPECT_EQ(in, out);
}

TEST(GuestMemory, ObjectRoundTrip) {
  GuestMemory m(1);
  struct Packed {
    std::uint32_t a;
    std::uint16_t b;
  };
  m.write_obj(8, Packed{7, 9});
  const auto p = m.read_obj<Packed>(8);
  EXPECT_EQ(p.a, 7u);
  EXPECT_EQ(p.b, 9u);
}

TEST(GuestMemory, OutOfBoundsThrows) {
  GuestMemory m(1);
  std::array<std::byte, 8> buf{};
  EXPECT_THROW(m.write(kPageSize - 4, buf), BadGuestAccess);
  EXPECT_THROW(m.read(kPageSize, buf), BadGuestAccess);
  EXPECT_THROW((void)m.read_obj<std::uint64_t>(kPageSize - 4), BadGuestAccess);
}

TEST(GuestMemory, OverflowingAddressDoesNotWrap) {
  GuestMemory m(1);
  std::array<std::byte, 1> buf{};
  EXPECT_THROW(m.read(~GuestAddr{0}, buf), BadGuestAccess);
}

TEST(GuestMemory, ZeroRange) {
  GuestMemory m(1);
  m.write_obj<std::uint32_t>(16, 0xdeadbeef);
  m.zero(16, 4);
  EXPECT_EQ(m.read_obj<std::uint32_t>(16), 0u);
  EXPECT_THROW(m.zero(kPageSize, 1), BadGuestAccess);
}

TEST(GuestMemory, ForeignMapDeniedByDefault) {
  GuestMemory m(1);
  EXPECT_FALSE(m.foreign_mappable());
  EXPECT_THROW((void)m.map_foreign_range(0, kPageSize), ForeignMapDenied);
}

TEST(GuestMemory, ForeignMapSeesGuestWrites) {
  GuestMemory m(2);
  m.set_foreign_mappable(true);
  m.write_obj<std::uint64_t>(kPageSize + 8, 0xabcdef);
  auto view = m.map_foreign_range(kPageSize, kPageSize);
  std::uint64_t v = 0;
  std::memcpy(&v, view.data() + 8, sizeof(v));
  EXPECT_EQ(v, 0xabcdefu);
}

TEST(GuestMemory, ForeignMapIsLive) {
  // The mapping is a view: later guest writes are visible through it,
  // which is what lets IBMon watch the HCA update CQ rings.
  GuestMemory m(1);
  m.set_foreign_mappable(true);
  auto view = m.map_foreign_range(0, kPageSize);
  m.write_obj<std::uint32_t>(0, 42);
  std::uint32_t v = 0;
  std::memcpy(&v, view.data(), sizeof(v));
  EXPECT_EQ(v, 42u);
}

TEST(GuestMemory, ForeignMapRequiresPageAlignment) {
  GuestMemory m(1);
  m.set_foreign_mappable(true);
  EXPECT_THROW((void)m.map_foreign_range(8, 16), BadGuestAccess);
}

TEST(GuestMemory, ForeignMapBoundsChecked) {
  GuestMemory m(1);
  m.set_foreign_mappable(true);
  EXPECT_THROW((void)m.map_foreign_range(0, 2 * kPageSize), BadGuestAccess);
}

TEST(GuestAllocator, AllocatesSequentiallyAligned) {
  GuestMemory m(4);
  GuestAllocator alloc(m);
  const GuestAddr a = alloc.allocate(10, 64);
  const GuestAddr b = alloc.allocate(10, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GT(b, a);
}

TEST(GuestAllocator, PageAllocationIsPageAligned) {
  GuestMemory m(8);
  GuestAllocator alloc(m);
  (void)alloc.allocate(10);
  const GuestAddr p = alloc.allocate_pages(2);
  EXPECT_EQ(p % kPageSize, 0u);
}

TEST(GuestAllocator, ThrowsWhenExhausted) {
  GuestMemory m(1);
  GuestAllocator alloc(m);
  (void)alloc.allocate(kPageSize - 10);
  EXPECT_THROW((void)alloc.allocate(100), std::bad_alloc);
}

TEST(GuestAllocator, RejectsBadAlignment) {
  GuestMemory m(1);
  GuestAllocator alloc(m);
  EXPECT_THROW((void)alloc.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW((void)alloc.allocate(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace resex::mem
