#include "mem/tpt.hpp"

#include <gtest/gtest.h>

namespace resex::mem {
namespace {

constexpr std::uint32_t kPd = 1;

TEST(Tpt, RegisterReturnsMatchingKeys) {
  Tpt tpt;
  const auto mr = tpt.register_region(kPd, 0x1000, 256, Access::kLocalWrite);
  EXPECT_EQ(mr.lkey, mr.rkey);
  EXPECT_EQ(mr.addr, 0x1000u);
  EXPECT_EQ(mr.length, 256u);
  EXPECT_EQ(tpt.live_regions(), 1u);
}

TEST(Tpt, RejectsEmptyRegion) {
  Tpt tpt;
  EXPECT_THROW((void)tpt.register_region(kPd, 0, 0, Access::kNone),
               std::invalid_argument);
}

TEST(Tpt, ValidateOkWithinBounds) {
  Tpt tpt;
  const auto mr = tpt.register_region(kPd, 0x1000, 256, Access::kLocalWrite);
  EXPECT_EQ(tpt.validate(mr.lkey, kPd, 0x1000, 256, Access::kLocalWrite),
            TptStatus::kOk);
  EXPECT_EQ(tpt.validate(mr.lkey, kPd, 0x1080, 64, Access::kLocalWrite),
            TptStatus::kOk);
}

TEST(Tpt, ValidateOutOfBounds) {
  Tpt tpt;
  const auto mr = tpt.register_region(kPd, 0x1000, 256, Access::kLocalWrite);
  EXPECT_EQ(tpt.validate(mr.lkey, kPd, 0x0FFF, 16, Access::kLocalWrite),
            TptStatus::kOutOfBounds);
  EXPECT_EQ(tpt.validate(mr.lkey, kPd, 0x10F0, 32, Access::kLocalWrite),
            TptStatus::kOutOfBounds);
  EXPECT_EQ(tpt.validate(mr.lkey, kPd, 0x1000, 257, Access::kLocalWrite),
            TptStatus::kOutOfBounds);
}

TEST(Tpt, ValidateLenOverflowDoesNotWrap) {
  Tpt tpt;
  const auto mr = tpt.register_region(kPd, 0x1000, 256, Access::kLocalWrite);
  EXPECT_EQ(tpt.validate(mr.lkey, kPd, 0x1010, ~std::size_t{0},
                         Access::kLocalWrite),
            TptStatus::kOutOfBounds);
}

TEST(Tpt, AccessRightsEnforced) {
  Tpt tpt;
  const auto mr = tpt.register_region(kPd, 0x0, 64, Access::kRemoteRead);
  EXPECT_EQ(tpt.validate(mr.rkey, kPd, 0x0, 64, Access::kRemoteWrite),
            TptStatus::kAccessDenied);
  EXPECT_EQ(tpt.validate(mr.rkey, kPd, 0x0, 64, Access::kRemoteRead),
            TptStatus::kOk);
}

TEST(Tpt, CombinedAccessRights) {
  Tpt tpt;
  const auto mr = tpt.register_region(
      kPd, 0x0, 64, Access::kLocalWrite | Access::kRemoteWrite);
  EXPECT_EQ(tpt.validate(mr.rkey, kPd, 0x0, 8, Access::kRemoteWrite),
            TptStatus::kOk);
  EXPECT_EQ(tpt.validate(mr.rkey, kPd, 0x0, 8, Access::kLocalWrite),
            TptStatus::kOk);
  EXPECT_EQ(tpt.validate(mr.rkey, kPd, 0x0, 8, Access::kRemoteRead),
            TptStatus::kAccessDenied);
}

TEST(Tpt, WrongDomainRejected) {
  Tpt tpt;
  const auto mr = tpt.register_region(kPd, 0x0, 64, Access::kLocalWrite);
  EXPECT_EQ(tpt.validate(mr.lkey, kPd + 1, 0x0, 8, Access::kLocalWrite),
            TptStatus::kWrongDomain);
  // Remote accesses skip the PD check (rkey semantics).
  EXPECT_EQ(tpt.validate(mr.lkey, kPd + 1, 0x0, 8, Access::kLocalWrite,
                         /*check_pd=*/false),
            TptStatus::kOk);
}

TEST(Tpt, UnknownKeyRejected) {
  Tpt tpt;
  EXPECT_EQ(tpt.validate(0xFFFF00, kPd, 0, 1, Access::kNone),
            TptStatus::kBadKey);
}

TEST(Tpt, DeregisterInvalidatesKey) {
  Tpt tpt;
  const auto mr = tpt.register_region(kPd, 0x0, 64, Access::kLocalWrite);
  EXPECT_TRUE(tpt.deregister_region(mr.lkey));
  EXPECT_EQ(tpt.validate(mr.lkey, kPd, 0x0, 8, Access::kLocalWrite),
            TptStatus::kBadKey);
  EXPECT_EQ(tpt.live_regions(), 0u);
  EXPECT_FALSE(tpt.deregister_region(mr.lkey));  // double-free rejected
}

TEST(Tpt, StaleKeyAfterSlotReuseRejected) {
  Tpt tpt;
  const auto mr1 = tpt.register_region(kPd, 0x0, 64, Access::kLocalWrite);
  ASSERT_TRUE(tpt.deregister_region(mr1.lkey));
  const auto mr2 = tpt.register_region(kPd, 0x100, 64, Access::kLocalWrite);
  // Slot reused with a new generation tag: old key must not alias new region.
  EXPECT_NE(mr1.lkey, mr2.lkey);
  EXPECT_EQ(tpt.validate(mr1.lkey, kPd, 0x0, 8, Access::kLocalWrite),
            TptStatus::kBadKey);
  EXPECT_EQ(tpt.validate(mr2.lkey, kPd, 0x100, 8, Access::kLocalWrite),
            TptStatus::kOk);
}

TEST(Tpt, LookupReturnsRegionOrNullopt) {
  Tpt tpt;
  const auto mr = tpt.register_region(kPd, 0x40, 128, Access::kRemoteWrite);
  const auto found = tpt.lookup(mr.lkey);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->addr, 0x40u);
  EXPECT_EQ(found->length, 128u);
  EXPECT_FALSE(tpt.lookup(0xABCD00).has_value());
}

TEST(Tpt, ManyRegionsIndependent) {
  Tpt tpt;
  std::vector<RegisteredRegion> mrs;
  for (std::uint32_t i = 0; i < 100; ++i) {
    mrs.push_back(tpt.register_region(kPd, i * 0x1000, 0x800,
                                      Access::kLocalWrite));
  }
  EXPECT_EQ(tpt.live_regions(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tpt.validate(mrs[i].lkey, kPd, i * 0x1000, 0x800,
                           Access::kLocalWrite),
              TptStatus::kOk);
  }
}

TEST(TptStatus, ToStringCoversAll) {
  EXPECT_STREQ(to_string(TptStatus::kOk), "ok");
  EXPECT_STREQ(to_string(TptStatus::kBadKey), "bad-key");
  EXPECT_STREQ(to_string(TptStatus::kOutOfBounds), "out-of-bounds");
  EXPECT_STREQ(to_string(TptStatus::kAccessDenied), "access-denied");
  EXPECT_STREQ(to_string(TptStatus::kWrongDomain), "wrong-domain");
}

}  // namespace
}  // namespace resex::mem
