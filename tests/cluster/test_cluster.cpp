// resex::cluster suite: topology shape (star / 2-tier fat-tree with real
// per-hop forwarding), the ClusterExchange book, live migration end-to-end
// (bytes on the wire, domain retirement, a client that keeps its
// connection), the price-driven broker beating static placement, and
// determinism of the whole scenario incl. the parallel runner.

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "../fabric/fabric_fixture.hpp"
#include "cluster/broker.hpp"
#include "cluster/migration.hpp"
#include "cluster/scenario.hpp"
#include "cluster/service.hpp"
#include "cluster/topology.hpp"
#include "core/cluster_exchange.hpp"
#include "core/testbed.hpp"
#include "runner/cluster_runner.hpp"

namespace resex::cluster {
namespace {

using fabric::testing::Endpoint;
using fabric::testing::make_endpoint_on;
using sim::Task;

fabric::SendWr write_wr(const Endpoint& src, const Endpoint& dst,
                        std::uint32_t bytes) {
  fabric::SendWr wr;
  wr.opcode = fabric::Opcode::kRdmaWriteWithImm;
  wr.local_addr = src.buf;
  wr.lkey = src.mr.lkey;
  wr.length = bytes;
  wr.remote_addr = dst.buf;
  wr.rkey = dst.mr.rkey;
  return wr;
}

// --- topology ----------------------------------------------------------------

TEST(ClusterTopology, StarPutsEveryHostOnOneSwitch) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.topology = TopologyKind::kStar;
  Cluster cluster(cfg);

  EXPECT_EQ(cluster.node_count(), 8u);
  EXPECT_EQ(cluster.fabric().switch_count(), 1u);
  for (std::uint32_t i = 0; i < cluster.node_count(); ++i) {
    EXPECT_EQ(cluster.switch_of_node(i), 0u);
    EXPECT_EQ(cluster.node(i).name(), "n" + std::to_string(i));
  }
}

TEST(ClusterTopology, FatTreeGroupsHostsOntoLeavesAndTrunksEverySpine) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.topology = TopologyKind::kFatTree;
  cfg.leaf_width = 4;
  cfg.spines = 2;
  Cluster cluster(cfg);

  // 2 leaves (switches 0, 1) + 2 spines (switches 2, 3).
  ASSERT_EQ(cluster.fabric().switch_count(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.switch_of_node(i), 0u) << "node " << i;
  }
  for (std::uint32_t i = 4; i < 8; ++i) {
    EXPECT_EQ(cluster.switch_of_node(i), 1u) << "node " << i;
  }
  // Every leaf is trunked to every spine, both directions, and leaves are
  // not wired to each other.
  for (std::uint32_t leaf : {0u, 1u}) {
    for (std::uint32_t spine : {2u, 3u}) {
      EXPECT_NE(cluster.fabric().trunk(leaf, spine), nullptr);
      EXPECT_NE(cluster.fabric().trunk(spine, leaf), nullptr);
    }
  }
  EXPECT_EQ(cluster.fabric().trunk(0, 1), nullptr);
}

TEST(ClusterTopology, CrossLeafPacketsTakeThreeHopsSameLeafOne) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.pcpus_per_node = 4;
  cfg.topology = TopologyKind::kFatTree;
  cfg.leaf_width = 4;
  cfg.spines = 2;
  cfg.fabric = fabric::testing::test_config();
  Cluster cluster(cfg);
  auto& sim = cluster.sim();

  Endpoint src = make_endpoint_on(cluster.node(0), cluster.hca(0), "src");
  Endpoint near = make_endpoint_on(cluster.node(1), cluster.hca(1), "near");
  Endpoint far = make_endpoint_on(cluster.node(4), cluster.hca(4), "far");

  auto& hops = sim.metrics().counter("fabric.switch_hops");
  auto one_packet = [&sim](Endpoint& s, Endpoint& d) {
    fabric::Fabric::connect(*s.qp, *d.qp);
    d.qp->post_recv(fabric::RecvWr{.wr_id = 1});
    sim.spawn([](Endpoint& ep, fabric::SendWr wr) -> Task {
      co_await ep.verbs->post_send(*ep.qp, wr);
      (void)co_await ep.verbs->next_cqe(*ep.send_cq);
    }(s, write_wr(s, d, 1024)));  // one packet at the 1 KiB MTU
  };

  one_packet(src, near);  // same leaf: single traversal
  sim.run_until(sim::kMillisecond);
  EXPECT_EQ(hops.value(), 1u);

  one_packet(src, far);  // cross leaf: leaf -> spine -> leaf
  sim.run_until(2 * sim::kMillisecond);
  EXPECT_EQ(hops.value(), 1u + 3u);
}

// --- the exchange book -------------------------------------------------------

TEST(ClusterExchangeBook, UpsertsSortedAndPicksCheapestDeterministically) {
  core::ClusterExchange ex;
  ex.post({.node_id = 2, .io_price = 0.9, .cpu_price = 0.5, .free_pcpus = 3});
  ex.post({.node_id = 0, .io_price = 0.2, .cpu_price = 0.1, .free_pcpus = 1});
  ex.post({.node_id = 1, .io_price = 0.2, .cpu_price = 0.1, .free_pcpus = 2});

  ASSERT_EQ(ex.book().size(), 3u);
  EXPECT_EQ(ex.book()[0].node_id, 0u);
  EXPECT_EQ(ex.book()[2].node_id, 2u);

  // Upsert refreshes in place, no duplicate row.
  ex.post({.node_id = 2, .io_price = 0.1, .cpu_price = 0.0, .free_pcpus = 3});
  ASSERT_EQ(ex.book().size(), 3u);
  ASSERT_NE(ex.quote(2), nullptr);
  EXPECT_DOUBLE_EQ(ex.quote(2)->io_price, 0.1);
  EXPECT_EQ(ex.quote(7), nullptr);

  // Node 2 is now cheapest; excluded, the 0/1 tie breaks to the lower id.
  const auto* best = ex.cheapest(/*min_free_pcpus=*/1, /*exclude=*/9);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->node_id, 2u);
  best = ex.cheapest(1, /*exclude=*/2);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->node_id, 0u);
  // Capacity filter: only node 2 has >= 3 free PCPUs.
  best = ex.cheapest(3, /*exclude=*/9);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->node_id, 2u);
  EXPECT_EQ(ex.cheapest(3, /*exclude=*/2), nullptr);
}

TEST(ClusterExchangeBook, BlendedPriceIsIoDominant) {
  core::NodePriceQuote q{.node_id = 0, .io_price = 0.5, .cpu_price = 0.4};
  EXPECT_DOUBLE_EQ(core::ClusterExchange::blended(q), 0.5 + 0.25 * 0.4);
  EXPECT_DOUBLE_EQ(core::ClusterExchange::blended(q, 0.0, 1.0), 0.4);
}

// --- live migration ----------------------------------------------------------

TEST(Migration, MovesServerAcrossTheFabricWhileClientKeepsReceiving) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.pcpus_per_node = 4;
  Cluster cluster(cfg);
  auto& sim = cluster.sim();

  Service svc(cluster.hca(0), cluster.hca(1),
              core::reporting_config(64 * 1024, 2000.0, 7), "svc0");
  MigrationEngine engine(cluster);
  svc.start();
  sim.run_until(50 * sim::kMillisecond);

  const auto old_domain = svc.server_domain().id();
  const auto guest_bytes = svc.server_domain().memory().size_bytes();
  const auto uplink_before = cluster.hca(0).uplink().bytes_sent();
  ASSERT_EQ(svc.server_node_id(), 0u);

  engine.migrate(svc, 3);
  sim::SimTime t = sim.now();
  do {  // spawn is lazy: step the sim at least once before polling
    t += sim::kMillisecond;
    sim.run_until(t);
  } while (engine.in_progress() && t < 2 * sim::kSecond);
  ASSERT_FALSE(engine.in_progress());

  const auto& stats = engine.stats();
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(svc.server_node_id(), 3u);
  EXPECT_EQ(svc.migrations(), 1u);
  EXPECT_TRUE(cluster.node(0).is_retired(old_domain));
  EXPECT_GT(stats.last_pause_ns, 0);

  // Round 0 ships the whole guest address space, so at least that many
  // payload bytes crossed the fabric — all through the source host port.
  EXPECT_GE(stats.bytes, guest_bytes);
  EXPECT_GE(cluster.hca(0).uplink().bytes_sent() - uplink_before, stats.bytes);
  EXPECT_EQ(sim.metrics().counter("cluster.migrations").value(), 1u);
  EXPECT_GE(sim.metrics().counter("cluster.migration_bytes").value(),
            guest_bytes);

  // The request stream survives the move.
  const auto received = svc.client_metrics().received;
  sim.run_until(t + 100 * sim::kMillisecond);
  EXPECT_GT(svc.client_metrics().received, received);
  EXPECT_EQ(svc.client_metrics().errors, 0u);
}

// --- scenario ----------------------------------------------------------------

double metric_value(const obs::MetricsSnapshot& snap, std::string_view name) {
  for (const auto& s : snap.samples) {
    if (s.name == name) return s.value;
  }
  return -1.0;
}

TEST(ClusterScenario, MigrationBeatsStaticPlacement) {
  ClusterScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.duration = 500 * sim::kMillisecond;
  cfg.seed = 11;

  cfg.migration_enabled = false;
  const auto fixed = run_cluster_scenario(cfg);

  cfg.migration_enabled = true;
  cfg.collect_metrics = true;
  const auto resex = run_cluster_scenario(cfg);

  // Same calibration, so the SLA limits agree between the two runs.
  EXPECT_DOUBLE_EQ(fixed.sla_limit_us, resex.sla_limit_us);
  EXPECT_EQ(fixed.migration.migrations, 0u);

  EXPECT_GE(resex.migration.migrations, 1u);
  EXPECT_LT(resex.violation_pct, fixed.violation_pct);
  // Whoever moved landed on a spare node (P .. 2P-1), not another
  // contended host.
  const std::uint32_t pairs = cfg.nodes / 4;
  for (const auto& s : resex.services) {
    if (s.migrations > 0) {
      EXPECT_GE(s.final_node, pairs) << s.name;
      EXPECT_LT(s.final_node, 2 * pairs) << s.name;
    }
  }
  // The migration bytes are visible in the metrics document.
  EXPECT_GE(metric_value(resex.metrics, "cluster.migration_bytes"),
            static_cast<double>(resex.migration.bytes));
  EXPECT_GT(metric_value(resex.metrics, "cluster.migration_bytes"), 0.0);
}

void expect_same_summary(const ClusterServiceSummary& a,
                         const ClusterServiceSummary& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.client_mean_us, b.client_mean_us);
  EXPECT_EQ(a.client_p99_us, b.client_p99_us);
  EXPECT_EQ(a.server_total_us, b.server_total_us);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.final_node, b.final_node);
}

void expect_same_result(const ClusterScenarioResult& a,
                        const ClusterScenarioResult& b) {
  EXPECT_EQ(a.sla_limit_us, b.sla_limit_us);
  EXPECT_EQ(a.baseline_total_us, b.baseline_total_us);
  EXPECT_EQ(a.violation_pct, b.violation_pct);
  EXPECT_EQ(a.migration.migrations, b.migration.migrations);
  EXPECT_EQ(a.migration.bytes, b.migration.bytes);
  EXPECT_EQ(a.migration.precopy_rounds, b.migration.precopy_rounds);
  EXPECT_EQ(a.migration.pause_ns_total, b.migration.pause_ns_total);
  ASSERT_EQ(a.services.size(), b.services.size());
  for (std::size_t i = 0; i < a.services.size(); ++i) {
    expect_same_summary(a.services[i], b.services[i]);
  }
  ASSERT_EQ(a.interferers.size(), b.interferers.size());
  for (std::size_t i = 0; i < a.interferers.size(); ++i) {
    expect_same_summary(a.interferers[i], b.interferers[i]);
  }
}

TEST(ClusterScenario, RepeatedRunsAreBitIdentical) {
  ClusterScenarioConfig cfg;
  cfg.nodes = 4;
  cfg.duration = 300 * sim::kMillisecond;
  cfg.seed = 5;
  const auto first = run_cluster_scenario(cfg);
  const auto second = run_cluster_scenario(cfg);
  expect_same_result(first, second);
  EXPECT_GT(first.services.at(0).samples, 0u);
}

TEST(ClusterRunner, ResultsAreIndependentOfJobCount) {
  auto make_points = [] {
    std::vector<runner::ClusterPoint> points;
    for (const bool migrate : {false, true}) {
      runner::ClusterPoint p;
      p.label = migrate ? "resex" : "static";
      p.params = {{"migrate", migrate ? "1" : "0"}};
      p.config.nodes = 4;
      p.config.warmup = 50 * sim::kMillisecond;
      p.config.duration = 200 * sim::kMillisecond;
      p.config.migration_enabled = migrate;
      p.config.sla_limit_us = 100.0;
      p.config.baseline_total_us = 50.0;
      points.push_back(std::move(p));
    }
    return points;
  };
  runner::RunnerOptions opts;
  opts.seeds = 2;
  opts.jobs = 1;
  const auto serial = runner::run_cluster(make_points(), opts);
  opts.jobs = 4;
  const auto parallel = runner::run_cluster(make_points(), opts);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(serial[p].label, parallel[p].label);
    EXPECT_EQ(serial[p].seeds, parallel[p].seeds);
    ASSERT_EQ(serial[p].trials.size(), parallel[p].trials.size());
    for (std::size_t r = 0; r < serial[p].trials.size(); ++r) {
      expect_same_result(serial[p].trials[r], parallel[p].trials[r]);
    }
  }
}

}  // namespace
}  // namespace resex::cluster
