#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace resex::sim {
namespace {

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, SingleValue) {
  Welford w;
  w.add(4.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 4.0);
  EXPECT_DOUBLE_EQ(w.max(), 4.0);
}

TEST(Welford, KnownMeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
  EXPECT_DOUBLE_EQ(w.sum(), 40.0);
}

TEST(Welford, MergeMatchesCombinedStream) {
  Welford a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmptySides) {
  Welford a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Samples, PercentilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(90.0), 90.1, 1e-9);
}

TEST(Samples, PercentileOutOfRangeThrows) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
}

TEST(Samples, EmptyPercentileIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
}

TEST(Samples, AddAfterPercentileInvalidatesCache) {
  Samples s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
}

TEST(Samples, ClearResets) {
  Samples s;
  s.add(3.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflowCounted) {
  Histogram h(10.0, 20.0, 5);
  h.add(9.0);
  h.add(20.0);  // hi edge counts as overflow (half-open range)
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdgesAndCenters) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 50.0);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 87.5);
}

TEST(KsStatistic, IdenticalSamplesAreZero) {
  Samples a, b;
  for (int i = 0; i < 100; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.0);
}

TEST(KsStatistic, DisjointSamplesAreOne) {
  Samples a, b;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    b.add(i + 1000);
  }
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(KsStatistic, ShiftedDistributionsScoreBetween) {
  Samples a, b;
  for (int i = 0; i < 1000; ++i) {
    a.add(i % 100);
    b.add(i % 100 + 50);  // half-overlapping uniforms
  }
  const double d = ks_statistic(a, b);
  EXPECT_GT(d, 0.4);
  EXPECT_LT(d, 0.6);
}

TEST(KsStatistic, SymmetricAndRejectsEmpty) {
  Samples a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(1.5);
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), ks_statistic(b, a));
  Samples empty;
  EXPECT_THROW((void)ks_statistic(a, empty), std::invalid_argument);
  EXPECT_THROW((void)ks_statistic(empty, a), std::invalid_argument);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

TEST(SlidingWindow, MeanOverPartialFill) {
  SlidingWindow w(10);
  w.add(2.0);
  w.add(4.0);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(SlidingWindow, EvictsOldestWhenFull) {
  SlidingWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
}

TEST(SlidingWindow, StddevMatchesSample) {
  SlidingWindow w(5);
  for (double x : {2.0, 4.0, 4.0, 4.0, 6.0}) w.add(x);
  EXPECT_NEAR(w.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(SlidingWindow, ClearEmpties) {
  SlidingWindow w(4);
  w.add(1.0);
  w.clear();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
}

}  // namespace
}  // namespace resex::sim
