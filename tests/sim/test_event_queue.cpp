#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace resex::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(30, [&] { order.push_back(3); });
  (void)q.push(10, [&] { order.push_back(1); });
  (void)q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    (void)q.push(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()->fn();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  (void)q.push(500, [] {});
  (void)q.push(100, [] {});
  EXPECT_EQ(q.next_time(), 100u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.push(10, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelMiddleEventSkipsOnlyIt) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(1, [&] { order.push_back(1); });
  EventHandle h = q.push(2, [&] { order.push_back(2); });
  (void)q.push(3, [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.pop()->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(EventQueue, HandleNotPendingAfterPop) {
  EventQueue q;
  EventHandle h = q.push(1, [] {});
  auto ev = q.pop();
  ev->fn();
  // The state is still alive through `ev`, but cancelling now is harmless.
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto h1 = q.push(1, [] {});
  (void)q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  h1.cancel();
  // Lazy cancellation: size may still count the cancelled record until the
  // queue touches the head.
  EXPECT_FALSE(q.empty());
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleavedPushesPopsStaySorted) {
  EventQueue q;
  std::vector<std::uint64_t> popped;
  for (std::uint64_t i = 0; i < 100; ++i) {
    (void)q.push((i * 7919) % 101, [] {});
  }
  std::uint64_t last = 0;
  while (!q.empty()) {
    auto t = q.next_time();
    EXPECT_GE(t, last);
    last = t;
    (void)q.pop();
  }
}

}  // namespace
}  // namespace resex::sim
