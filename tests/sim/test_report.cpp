#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace resex::sim {
namespace {

TEST(FormatCell, Variants) {
  EXPECT_EQ(format_cell(Cell{std::monostate{}}), "");
  EXPECT_EQ(format_cell(Cell{std::int64_t{42}}), "42");
  EXPECT_EQ(format_cell(Cell{3.14159}, 2), "3.14");
  EXPECT_EQ(format_cell(Cell{std::string{"abc"}}), "abc");
}

TEST(Table, RejectsEmptyColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({Cell{std::int64_t{1}}}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({Cell{std::string{"x"}}, Cell{std::int64_t{1}}});
  t.add_row({Cell{std::string{"longer"}}, Cell{std::int64_t{22}}});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({Cell{std::int64_t{1}}, Cell{2.5}});
  std::ostringstream os;
  t.write_csv(os, 1);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"s"});
  t.add_row({Cell{std::string{"a,b"}}});
  t.add_row({Cell{std::string{"q\"uote"}}});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "s\n\"a,b\"\n\"q\"\"uote\"\n");
}

TEST(Table, SaveCsvRoundTrips) {
  const std::string path = "/tmp/resex_test_table.csv";
  Table t({"col"});
  t.add_row({Cell{std::int64_t{7}}});
  t.save_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "col");
  std::getline(in, line);
  EXPECT_EQ(line, "7");
  std::remove(path.c_str());
}

TEST(Table, SaveCsvThrowsOnBadPath) {
  Table t({"c"});
  EXPECT_THROW(t.save_csv("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Table, RowAccessors) {
  Table t({"a"});
  t.add_row({Cell{std::int64_t{5}}});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0).at(0)), 5);
  EXPECT_THROW((void)t.row(3), std::out_of_range);
}

TEST(FormatDouble, ShortestRoundTrip) {
  EXPECT_EQ(format_double(100.0), "100");
  EXPECT_EQ(format_double(3.125), "3.125");
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(-2.5), "-2.5");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
}

TEST(Table, JsonBasic) {
  Table t({"name", "value", "empty"});
  t.add_row({Cell{std::string{"x"}}, Cell{2.5}, Cell{std::monostate{}}});
  t.add_row({Cell{std::string{"y"}}, Cell{std::int64_t{7}}, Cell{1.0}});
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"name\": \"x\", \"value\": 2.5, \"empty\": null},\n"
            "  {\"name\": \"y\", \"value\": 7, \"empty\": 1}\n"
            "]\n");
}

TEST(Table, SaveJsonRoundTrips) {
  const std::string path = "/tmp/resex_test_table.json";
  Table t({"col"});
  t.add_row({Cell{std::int64_t{7}}});
  t.save_json(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "[\n  {\"col\": 7}\n]\n");
  std::remove(path.c_str());
  EXPECT_THROW(t.save_json("/nonexistent-dir/x.json"), std::runtime_error);
}

TEST(PrintHeading, ContainsTitle) {
  std::ostringstream os;
  print_heading(os, "Figure 1");
  EXPECT_NE(os.str().find("== Figure 1 =="), std::string::npos);
}

}  // namespace
}  // namespace resex::sim
