#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace resex::sim {
namespace {

using namespace resex::sim::literals;

TEST(Simulation, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0u);
}

TEST(Simulation, CallbackRunsAtScheduledTime) {
  Simulation sim;
  SimTime seen = 0;
  sim.schedule_at(5_us, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5_us);
  EXPECT_EQ(sim.now(), 5_us);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.schedule_at(10_us, [&] {
    sim.schedule_in(7_us, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 17_us);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(10_us, [&] {
    EXPECT_THROW((void)sim.schedule_at(5_us, [] {}), std::logic_error);
  });
  sim.run();
}

TEST(Simulation, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulation sim;
  sim.run_until(1_ms);
  EXPECT_EQ(sim.now(), 1_ms);
}

TEST(Simulation, RunUntilLeavesLaterEventsPending) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1_us, [&] { ++fired; });
  sim.schedule_at(3_us, [&] { ++fired; });
  sim.run_until(2_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2_us);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunForAdvancesRelative) {
  Simulation sim;
  sim.run_for(2_us);
  sim.run_for(3_us);
  EXPECT_EQ(sim.now(), 5_us);
}

TEST(Simulation, EventsProcessedCounter) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(static_cast<SimTime>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulation, CancelledEventDoesNotRun) {
  Simulation sim;
  bool ran = false;
  auto h = sim.schedule_at(1_us, [&] { ran = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
}

// --- coroutine tasks --------------------------------------------------------

Task delayer(Simulation& sim, std::vector<SimTime>& log) {
  log.push_back(sim.now());
  co_await sim.delay(10_us);
  log.push_back(sim.now());
  co_await sim.delay(5_us);
  log.push_back(sim.now());
}

TEST(SimulationTask, DelaysAdvanceClock) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delayer(sim, log));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 0u);
  EXPECT_EQ(log[1], 10_us);
  EXPECT_EQ(log[2], 15_us);
  EXPECT_EQ(sim.live_tasks(), 0u);
}

Task inner(Simulation& sim, std::vector<std::string>& log) {
  log.push_back("inner-start");
  co_await sim.delay(2_us);
  log.push_back("inner-end");
}

Task outer(Simulation& sim, std::vector<std::string>& log) {
  log.push_back("outer-start");
  co_await inner(sim, log);
  log.push_back("outer-end");
}

TEST(SimulationTask, NestedTasksResumeParent) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn(outer(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"outer-start", "inner-start",
                                           "inner-end", "outer-end"}));
}

Task thrower(Simulation& sim) {
  co_await sim.delay(1_us);
  throw std::runtime_error("task boom");
}

TEST(SimulationTask, DetachedExceptionSurfacesFromRun) {
  Simulation sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Task rethrowing_parent(Simulation& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(SimulationTask, NestedExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  sim.spawn(rethrowing_parent(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Task forever(Simulation& sim) {
  for (;;) co_await sim.delay(1_ms);
}

TEST(SimulationTask, PendingTasksAreDestroyedWithSimulation) {
  auto sim = std::make_unique<Simulation>();
  sim->spawn(forever(*sim));
  sim->run_until(10_ms);
  EXPECT_EQ(sim->live_tasks(), 1u);
  sim.reset();  // must not leak or crash (asan-clean)
}

TEST(SimulationTask, AtAwaitsAbsoluteTime) {
  Simulation sim;
  SimTime seen = 0;
  sim.spawn([](Simulation& s, SimTime& out) -> Task {
    co_await s.at(100_us);
    out = s.now();
    co_await s.at(50_us);  // in the past: resumes immediately
    out = s.now();
  }(sim, seen));
  sim.run();
  EXPECT_EQ(seen, 100_us);
}

TEST(SimulationTask, SpawnDuringRunStartsAtCurrentTime) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.schedule_at(7_us, [&] {
    sim.spawn([](Simulation& s, std::vector<SimTime>& l) -> Task {
      l.push_back(s.now());
      co_return;
    }(sim, log));
  });
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 7_us);
}

// --- Trigger ----------------------------------------------------------------

Task wait_on(Trigger& t, Simulation& sim, std::vector<SimTime>& log) {
  co_await t.wait();
  log.push_back(sim.now());
}

TEST(Trigger, FireWakesAllWaiters) {
  Simulation sim;
  Trigger trig(sim);
  std::vector<SimTime> log;
  sim.spawn(wait_on(trig, sim, log));
  sim.spawn(wait_on(trig, sim, log));
  sim.schedule_at(30_us, [&] { trig.fire(); });
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 30_us);
  EXPECT_EQ(log[1], 30_us);
}

TEST(Trigger, ReusableAfterFire) {
  Simulation sim;
  Trigger trig(sim);
  std::vector<SimTime> log;
  sim.spawn([](Simulation& s, Trigger& t, std::vector<SimTime>& l) -> Task {
    co_await t.wait();
    l.push_back(s.now());
    co_await t.wait();
    l.push_back(s.now());
  }(sim, trig, log));
  sim.schedule_at(10_us, [&] { trig.fire(); });
  sim.schedule_at(20_us, [&] { trig.fire(); });
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 10_us);
  EXPECT_EQ(log[1], 20_us);
}

TEST(Trigger, WaiterCount) {
  Simulation sim;
  Trigger trig(sim);
  std::vector<SimTime> log;
  sim.spawn(wait_on(trig, sim, log));
  sim.run();  // task suspends on the trigger; queue drains
  EXPECT_EQ(trig.waiter_count(), 1u);
  trig.fire();
  sim.run();
  EXPECT_EQ(trig.waiter_count(), 0u);
}

TEST(Simulation, DeterministicEventOrderAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(static_cast<SimTime>((i * 13) % 7), [&order, i] {
        order.push_back(i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace resex::sim
