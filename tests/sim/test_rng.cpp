#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace resex::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a = Rng::stream(7, 0);
  Rng b = Rng::stream(7, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, StreamsAreReproducible) {
  Rng a = Rng::stream(7, 3);
  Rng b = Rng::stream(7, 3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64CoversRangeWithoutBias) {
  Rng r(6);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[r.uniform_u64(5)] += 1;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 5.0, n * 0.02);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng r(8);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(9);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng r(10);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(1.5, 2.0), 2.0);
}

TEST(Rng, ParetoMeanForAlphaAboveOne) {
  // E[X] = alpha*xmin/(alpha-1) for alpha>1; use alpha=3 for low variance.
  Rng r(11);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += r.pareto(3.0, 1.0);
  EXPECT_NEAR(sum / n, 1.5, 0.02);
}

TEST(Rng, ChanceProbability) {
  Rng r(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(a.next());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Derive, SplitsCollisionFreeAcrossIndices) {
  // Compile-time usable, deterministic, and collision-free over a dense
  // index range (the affine injection is injective for a fixed base).
  static_assert(derive(1, 0) != derive(1, 1));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(derive(1234, i));
  EXPECT_EQ(seen.size(), 4096u);
  EXPECT_EQ(derive(1234, 77), derive(1234, 77));
  EXPECT_NE(derive(1234, 77), derive(1235, 77));
}

TEST(Derive, ChildStreamsAreDecorrelated) {
  // Neighbouring derived seeds must not produce correlated uniforms.
  Rng a{derive(9, 0)};
  Rng b{derive(9, 1)};
  double dot = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    dot += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  }
  EXPECT_NEAR(dot / n, 0.0, 0.005);  // covariance ~ 0 (sd ~ 1/(12*sqrt(n)))
}

}  // namespace
}  // namespace resex::sim
