#include "ibmon/ibmon.hpp"

#include <gtest/gtest.h>

#include "../fabric/fabric_fixture.hpp"

namespace resex::ibmon {
namespace {

using namespace resex::sim::literals;
using fabric::Cqe;
using fabric::CqeOpcode;
using fabric::CqeStatus;
using fabric::testing::Endpoint;
using fabric::testing::TwoNodeWorld;
using sim::Task;

Cqe send_cqe(std::uint64_t wr_id, std::uint32_t bytes,
             fabric::QpNum qp = 10) {
  Cqe c;
  c.wr_id = wr_id;
  c.qp_num = qp;
  c.byte_len = bytes;
  c.opcode = static_cast<std::uint8_t>(CqeOpcode::kSendComplete);
  c.status = static_cast<std::uint8_t>(CqeStatus::kSuccess);
  return c;
}

struct IbMonFixture : ::testing::Test {
  TwoNodeWorld world;
  Endpoint ep = world.make_endpoint(world.node_a, *world.hca_a, "vm");
  IbMon mon{world.sim};

  void SetUp() override {
    ep.domain->memory().set_foreign_mappable(true);
  }
};

TEST_F(IbMonFixture, WatchRequiresForeignMappingPrivilege) {
  Endpoint locked = world.make_endpoint(world.node_a, *world.hca_a, "locked");
  EXPECT_THROW(mon.watch_cq(*locked.domain, *locked.send_cq),
               mem::ForeignMapDenied);
}

TEST_F(IbMonFixture, CountsSendCompletions) {
  mon.watch_cq(*ep.domain, *ep.send_cq);
  ep.send_cq->produce(send_cqe(1, 64 * 1024));
  ep.send_cq->produce(send_cqe(2, 64 * 1024));
  mon.sample_now();
  const auto st = mon.stats(ep.domain->id());
  EXPECT_EQ(st.send_completions, 2u);
  EXPECT_EQ(st.send_bytes, 128u * 1024u);
  EXPECT_EQ(st.send_mtus, 128u);
  EXPECT_EQ(st.est_buffer_size, 64u * 1024u);
}

TEST_F(IbMonFixture, MtuRoundingPerMessage) {
  mon.watch_cq(*ep.domain, *ep.send_cq);
  ep.send_cq->produce(send_cqe(1, 1));      // 1 MTU
  ep.send_cq->produce(send_cqe(2, 1025));   // 2 MTUs
  ep.send_cq->produce(send_cqe(3, 0));      // still 1 MTU on the wire
  mon.sample_now();
  EXPECT_EQ(mon.stats(ep.domain->id()).send_mtus, 4u);
}

TEST_F(IbMonFixture, SeparatesRecvFromSend) {
  mon.watch_cq(*ep.domain, *ep.recv_cq);
  Cqe c = send_cqe(1, 2048);
  c.opcode = static_cast<std::uint8_t>(CqeOpcode::kRecvRdmaWithImm);
  ep.recv_cq->produce(c);
  mon.sample_now();
  const auto st = mon.stats(ep.domain->id());
  EXPECT_EQ(st.send_completions, 0u);
  EXPECT_EQ(st.recv_completions, 1u);
  EXPECT_EQ(st.recv_bytes, 2048u);
}

TEST_F(IbMonFixture, ErrorCqesCountedSeparately) {
  mon.watch_cq(*ep.domain, *ep.send_cq);
  Cqe c = send_cqe(1, 4096);
  c.status = static_cast<std::uint8_t>(CqeStatus::kRemoteAccessError);
  ep.send_cq->produce(c);
  mon.sample_now();
  const auto st = mon.stats(ep.domain->id());
  EXPECT_EQ(st.error_completions, 1u);
  EXPECT_EQ(st.send_bytes, 0u);
}

TEST_F(IbMonFixture, TracksQpNumbers) {
  mon.watch_cq(*ep.domain, *ep.send_cq);
  ep.send_cq->produce(send_cqe(1, 10, 7));
  ep.send_cq->produce(send_cqe(2, 10, 9));
  ep.send_cq->produce(send_cqe(3, 10, 7));
  mon.sample_now();
  const auto st = mon.stats(ep.domain->id());
  EXPECT_EQ(st.qpns, (std::set<fabric::QpNum>{7, 9}));
}

TEST_F(IbMonFixture, IncrementalScansOnlyCountNewEntries) {
  mon.watch_cq(*ep.domain, *ep.send_cq);
  ep.send_cq->produce(send_cqe(1, 1024));
  mon.sample_now();
  mon.sample_now();  // nothing new
  EXPECT_EQ(mon.stats(ep.domain->id()).send_completions, 1u);
  ep.send_cq->produce(send_cqe(2, 1024));
  mon.sample_now();
  EXPECT_EQ(mon.stats(ep.domain->id()).send_completions, 2u);
}

TEST_F(IbMonFixture, DoesNotDisturbTheGuestConsumer) {
  mon.watch_cq(*ep.domain, *ep.send_cq);
  ep.send_cq->produce(send_cqe(1, 512));
  mon.sample_now();
  // The application's own poll must still see the CQE.
  const auto polled = ep.send_cq->poll();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->wr_id, 1u);
}

TEST_F(IbMonFixture, SurvivesRingWrapAcrossLaps) {
  // Ring is 1024 entries; drain via the guest while IBMon samples often
  // enough — totals must be exact across several laps.
  mon.watch_cq(*ep.domain, *ep.send_cq);
  const int total = 3000;
  for (int i = 0; i < total; ++i) {
    ep.send_cq->produce(send_cqe(static_cast<std::uint64_t>(i), 1024));
    (void)ep.send_cq->poll();  // guest consumes immediately
    if (i % 100 == 0) mon.sample_now();
  }
  mon.sample_now();
  EXPECT_EQ(mon.stats(ep.domain->id()).send_completions,
            static_cast<std::uint64_t>(total));
}

TEST_F(IbMonFixture, LapMissDetectedAndEstimated) {
  // Produce more than two full rings between samples: IBMon cannot have
  // seen the overwritten lap; it must resynchronize and record an estimate
  // instead of stalling forever.
  mon.watch_cq(*ep.domain, *ep.send_cq);
  auto produce_burst = [&](int n, sim::SimTime at) {
    world.sim.schedule_at(at, [this, n] {
      for (int i = 0; i < n; ++i) {
        ep.send_cq->produce(send_cqe(1, 2048));
        (void)ep.send_cq->poll();
      }
    });
  };
  produce_burst(100, 1_us);  // establish est_buffer_size
  world.sim.run();
  mon.sample_now();
  produce_burst(1500, 2_us);  // more than one lap past the shadow
  world.sim.run();
  mon.sample_now();
  const auto st = mon.stats(ep.domain->id());
  EXPECT_GT(st.missed_estimate, 0u);
  // Totals are approximate but must be within a lap of the truth.
  EXPECT_GE(st.send_completions + st.missed_estimate, 1500u);
  // And the monitor must keep functioning afterwards.
  ep.send_cq->produce(send_cqe(9, 2048));
  mon.sample_now();
  EXPECT_GT(mon.stats(ep.domain->id()).send_completions,
            st.send_completions);
}

TEST_F(IbMonFixture, FractionalLapChargesOnlyOverwrittenSlots) {
  // Regression: when the producer lapped the shadow by a *fraction* of the
  // ring, resync used to charge a full ring (`entries`) of missed
  // completions. Charging per overwritten slot keeps the estimate exact:
  // 10 slots overwritten -> exactly 10 missed, everything else consumed.
  mon.watch_cq(*ep.domain, *ep.send_cq);
  auto produce_burst = [&](int n, sim::SimTime at) {
    world.sim.schedule_at(at, [this, n] {
      for (int i = 0; i < n; ++i) {
        ep.send_cq->produce(send_cqe(1, 2048));
        (void)ep.send_cq->poll();
      }
    });
  };
  produce_burst(10, 1_us);  // establishes est_buffer_size = 2048
  world.sim.run();
  mon.sample_now();  // shadow = 10
  // 1024 + 10 entries: slots 10..19 are overwritten by the second lap
  // before the monitor can see their first-lap CQEs.
  produce_burst(1024 + 10, 2_us);
  world.sim.run();
  mon.sample_now();
  const auto st = mon.stats(ep.domain->id());
  EXPECT_EQ(st.missed_estimate, 10u);
  EXPECT_EQ(st.send_completions, 1034u);
  // The missed slots are charged at the estimated buffer size, so the byte
  // total is exact here (every message was 2048 bytes).
  EXPECT_EQ(st.send_bytes, (1034u + 10u) * 2048u);
}

TEST_F(IbMonFixture, MedianGapResistsSlowTailAt500msSampling) {
  // ROADMAP A2 regression: sampled at 500 ms the ring laps ~9x between
  // scans, so the resync charge must extrapolate the lost completions from
  // the inter-completion gap. The EWMA estimate is dominated by the most
  // recently consumed gaps — a brief slow tail right before each scan
  // inflates it ~25x and the reconstruction used to collapse to ~20 % of
  // the truth. The per-scan median shrugs the tail off.
  IbMon smon{world.sim, IbMonConfig{.sample_period = 500 * sim::kMillisecond,
                                    .mtu_bytes = 1024}};
  smon.watch_cq(*ep.domain, *ep.send_cq);
  // Baseline completion + sample so the very first 500 ms window has a
  // nonzero timestamp span to extrapolate over.
  world.sim.schedule_at(1_us, [this] {
    ep.send_cq->produce(send_cqe(1, 2048));
    (void)ep.send_cq->poll();
  });
  world.sim.schedule_at(2_us, [&smon] { smon.sample_now(); });

  std::uint64_t produced = 1;
  world.sim.spawn([](sim::Simulation& sim, Endpoint& e,
                     std::uint64_t& total) -> Task {
    co_await sim.delay(10 * sim::kMicrosecond);
    for (int window = 0; window < 4; ++window) {
      for (int i = 0; i < 9600; ++i) {  // steady phase: one per 50 us
        e.send_cq->produce(send_cqe(1, 2048));
        (void)e.send_cq->poll();
        ++total;
        co_await sim.delay(50 * sim::kMicrosecond);
      }
      for (int i = 0; i < 10; ++i) {  // slow tail: one per 2 ms
        e.send_cq->produce(send_cqe(1, 2048));
        (void)e.send_cq->poll();
        ++total;
        co_await sim.delay(2 * sim::kMillisecond);
      }
    }
  }(world.sim, ep, produced));

  smon.start();
  world.sim.run_until(2100 * sim::kMillisecond);
  smon.sample_now();  // sweep entries produced after the last periodic scan

  const auto st = smon.stats(ep.domain->id());
  const auto truth = static_cast<double>(produced);
  const auto seen =
      static_cast<double>(st.send_completions + st.missed_estimate);
  EXPECT_GE(seen, 0.85 * truth);
  EXPECT_LE(seen, 1.15 * truth);
}

TEST_F(IbMonFixture, HwProduceCounterIsExactAt500msSampling) {
  // Same workload as MedianGapResistsSlowTailAt500msSampling (ring laps ~9x
  // between scans, slow tails poisoning the gap estimators), but dom0 reads
  // the HCA's per-CQ produce counter: the completion *count* must be exact,
  // strictly better than the extrapolation's worst-case ~13 % error.
  IbMon smon{world.sim,
             IbMonConfig{.sample_period = 500 * sim::kMillisecond,
                         .mtu_bytes = 1024, .hw_produce_counter = true}};
  smon.watch_cq(*ep.domain, *ep.send_cq);
  world.sim.schedule_at(1_us, [this] {
    ep.send_cq->produce(send_cqe(1, 2048));
    (void)ep.send_cq->poll();
  });
  world.sim.schedule_at(2_us, [&smon] { smon.sample_now(); });

  std::uint64_t produced = 1;
  world.sim.spawn([](sim::Simulation& sim, Endpoint& e,
                     std::uint64_t& total) -> Task {
    co_await sim.delay(10 * sim::kMicrosecond);
    for (int window = 0; window < 4; ++window) {
      for (int i = 0; i < 9600; ++i) {  // steady phase: one per 50 us
        e.send_cq->produce(send_cqe(1, 2048));
        (void)e.send_cq->poll();
        ++total;
        co_await sim.delay(50 * sim::kMicrosecond);
      }
      for (int i = 0; i < 10; ++i) {  // slow tail: one per 2 ms
        e.send_cq->produce(send_cqe(1, 2048));
        (void)e.send_cq->poll();
        ++total;
        co_await sim.delay(2 * sim::kMillisecond);
      }
    }
  }(world.sim, ep, produced));

  smon.start();
  world.sim.run_until(2100 * sim::kMillisecond);
  smon.sample_now();  // sweep entries produced after the last periodic scan

  const auto st = smon.stats(ep.domain->id());
  EXPECT_EQ(st.send_completions + st.missed_estimate, produced);
  // The bytes of lost completions are still EWMA-estimated, but here every
  // message is 2048 bytes, so the total must be exact too.
  EXPECT_EQ(st.send_bytes, produced * 2048u);
}

TEST_F(IbMonFixture, HwProduceCounterCatchesExactEvenLapOverrun) {
  // An exact even number of laps between scans restores the expected owner
  // parity: the ring walk consumes a full ring of *current-lap* CQEs and
  // never resyncs, silently dropping the skipped laps. The produce counter
  // sees through it.
  IbMon hwmon{world.sim, IbMonConfig{.hw_produce_counter = true}};
  hwmon.watch_cq(*ep.domain, *ep.send_cq);
  const std::uint32_t entries = ep.send_cq->entries();
  world.sim.schedule_at(1_us, [&] {
    for (std::uint32_t i = 0; i < 2 * entries; ++i) {
      ep.send_cq->produce(send_cqe(i, 2048));
      (void)ep.send_cq->poll();
    }
  });
  world.sim.run();
  hwmon.sample_now();
  const auto st = hwmon.stats(ep.domain->id());
  EXPECT_EQ(st.send_completions + st.missed_estimate, 2u * entries);
  EXPECT_GT(st.missed_estimate, 0u);
}

TEST_F(IbMonFixture, PeriodicSamplerRuns) {
  mon.watch_cq(*ep.domain, *ep.send_cq);
  mon.start();
  mon.start();  // idempotent
  world.sim.schedule_at(250_us, [&] { ep.send_cq->produce(send_cqe(1, 64)); });
  world.sim.run_until(1_ms);
  EXPECT_TRUE(mon.started());
  EXPECT_GE(mon.samples_taken(), 9u);
  EXPECT_EQ(mon.stats(ep.domain->id()).send_completions, 1u);
}

TEST_F(IbMonFixture, WatchDomainWatchesAllCqs) {
  mon.watch_domain(*ep.domain,
                   world.hca_a->domain_cqs(ep.domain->id()));
  EXPECT_EQ(mon.watched_cq_count(), 2u);
}

TEST_F(IbMonFixture, UnknownDomainGivesZeroStats) {
  const auto st = mon.stats(777);
  EXPECT_EQ(st.send_completions, 0u);
  EXPECT_EQ(st.send_bytes, 0u);
}

TEST_F(IbMonFixture, StalenessTracksObservationGaps) {
  IbMon smon{world.sim,
             IbMonConfig{.sample_period = 100 * sim::kMicrosecond,
                         .mtu_bytes = 1024,
                         .stale_after = 5 * sim::kMillisecond}};
  smon.watch_cq(*ep.domain, *ep.send_cq);
  smon.start();
  EXPECT_FALSE(smon.stale(ep.domain->id()));
  // A completion at 2 ms keeps the domain fresh at 4 ms...
  world.sim.schedule_at(2 * sim::kMillisecond,
                        [&] { ep.send_cq->produce(send_cqe(1, 64)); });
  world.sim.run_until(4 * sim::kMillisecond);
  EXPECT_FALSE(smon.stale(ep.domain->id()));
  // ...but 5+ ms of ring silence crosses the threshold.
  world.sim.run_until(8 * sim::kMillisecond);
  EXPECT_TRUE(smon.stale(ep.domain->id()));
  // Fresh completions clear it again.
  ep.send_cq->produce(send_cqe(2, 64));
  world.sim.run_until(9 * sim::kMillisecond);
  EXPECT_FALSE(smon.stale(ep.domain->id()));
  // Unknown domains are never stale; stale_after = 0 disables the check.
  EXPECT_FALSE(smon.stale(777));
  EXPECT_FALSE(mon.stale(ep.domain->id()));
}

TEST_F(IbMonFixture, EndToEndAgainstRealTraffic) {
  // Drive real RDMA traffic and check IBMon's reconstruction matches the
  // hardware counters.
  auto [src, dst] = world.make_connected_pair();
  src.domain->memory().set_foreign_mappable(true);
  mon.watch_domain(*src.domain,
                   world.hca_a->domain_cqs(src.domain->id()));
  mon.start();
  for (int i = 0; i < 8; ++i) dst.qp->post_recv(fabric::RecvWr{.wr_id = 1});
  world.sim.spawn([](Endpoint& s, Endpoint& d) -> Task {
    for (int i = 0; i < 8; ++i) {
      fabric::SendWr wr;
      wr.opcode = fabric::Opcode::kRdmaWriteWithImm;
      wr.local_addr = s.buf;
      wr.lkey = s.mr.lkey;
      wr.length = 16 * 1024;
      wr.remote_addr = d.buf;
      wr.rkey = d.mr.rkey;
      co_await s.verbs->post_send(*s.qp, wr);
      (void)co_await s.verbs->next_cqe(*s.send_cq);
    }
  }(src, dst));
  world.sim.run_until(10 * sim::kMillisecond);
  const auto st = mon.stats(src.domain->id());
  EXPECT_EQ(st.send_completions, 8u);
  EXPECT_EQ(st.send_bytes, 8u * 16u * 1024u);
  EXPECT_EQ(st.send_mtus, 8u * 16u);
  EXPECT_EQ(st.est_buffer_size, 16u * 1024u);
  EXPECT_EQ(st.qpns.count(src.qp->num()), 1u);
}

}  // namespace
}  // namespace resex::ibmon
