// resex::fault coverage: plan parsing, every fault class end-to-end against
// a two-node fabric (drop/corrupt recovery by retransmission, link flaps up
// to QP death, HCA stalls, dom0 control-path delays), seed determinism, and
// the runner-level guarantee that `--faults` sweeps stay byte-identical at
// any --jobs count.

#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../fabric/fabric_fixture.hpp"
#include "runner/runner.hpp"

namespace resex::fault {
namespace {

using fabric::Cqe;
using fabric::CqeStatus;
using fabric::Opcode;
using fabric::QpState;
using fabric::SendWr;
using fabric::testing::Endpoint;
using fabric::testing::TwoNodeWorld;
using sim::SimTime;
using sim::Task;

// --- FaultPlan parsing -------------------------------------------------------

TEST(FaultPlan, ParsesFullGrammarAndRoundTrips) {
  const auto plan = FaultPlan::parse(
      "drop=0.01,corrupt=0.002,flap=300:150:A/up,stall=10:5:1,ctl=0:1000:500");
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.corrupt_rate, 0.002);
  ASSERT_EQ(plan.flaps.size(), 1u);
  EXPECT_EQ(plan.flaps[0].at, 300 * sim::kMillisecond);
  EXPECT_EQ(plan.flaps[0].duration, 150 * sim::kMillisecond);
  EXPECT_EQ(plan.flaps[0].channel, "A/up");
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_EQ(plan.stalls[0].hca, 1);
  ASSERT_EQ(plan.control_delays.size(), 1u);
  EXPECT_EQ(plan.control_delays[0].extra, 500 * sim::kMicrosecond);
  EXPECT_TRUE(plan.any());
  // The canonical string parses back to the same canonical string.
  const auto again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(FaultPlan, EmptySpecIsAValidEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  EXPECT_FALSE(plan.any());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("flap=10"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("ctl=1:2"), std::invalid_argument);
}

// --- fabric-level fault injection --------------------------------------------

/// Post `count` plain RDMA writes back to back, recording each CQE and its
/// observation time.
Task send_many(Endpoint& src, const Endpoint& dst, int count,
               std::uint32_t length, std::vector<Cqe>& cqes,
               std::vector<SimTime>& times) {
  for (int i = 0; i < count; ++i) {
    SendWr wr;
    wr.wr_id = static_cast<std::uint64_t>(i) + 1;
    wr.opcode = Opcode::kRdmaWrite;
    wr.local_addr = src.buf;
    wr.lkey = src.mr.lkey;
    wr.length = length;
    wr.remote_addr = dst.buf;
    wr.rkey = dst.mr.rkey;
    co_await src.verbs->post_send(*src.qp, wr);
    cqes.push_back(co_await src.verbs->next_cqe(*src.send_cq));
    times.push_back(src.domain->vcpu().simulation().now());
  }
}

struct FaultWorld : ::testing::Test {
  TwoNodeWorld world;
  std::pair<Endpoint, Endpoint> pair = world.make_connected_pair();
  Endpoint& a = pair.first;
  Endpoint& b = pair.second;
  std::unique_ptr<FaultInjector> injector;
  std::vector<Cqe> cqes;
  std::vector<SimTime> times;

  void arm(const std::string& spec, std::uint64_t seed = 42) {
    injector = std::make_unique<FaultInjector>(FaultPlan::parse(spec), seed);
    injector->arm(world.fabric, &world.node_a);
  }
  std::uint64_t retransmits() {
    return world.sim.metrics().counter("fabric.retransmits").value();
  }
  void expect_all_success() {
    for (const auto& cqe : cqes) {
      EXPECT_EQ(cqe.status, static_cast<std::uint8_t>(CqeStatus::kSuccess))
          << "wr_id " << cqe.wr_id;
    }
  }
};

TEST_F(FaultWorld, DropsAreRecoveredByRetransmission) {
  arm("drop=0.05");
  world.sim.spawn(send_many(a, b, 40, 8192, cqes, times));
  world.sim.run();
  ASSERT_EQ(cqes.size(), 40u);
  expect_all_success();
  EXPECT_GT(injector->drops_injected(), 0u);
  EXPECT_GT(retransmits(), 0u);
  EXPECT_EQ(a.qp->state(), QpState::kReadyToSend);
}

TEST_F(FaultWorld, CorruptedPacketsAreRecovered) {
  arm("corrupt=0.05");
  world.sim.spawn(send_many(a, b, 40, 8192, cqes, times));
  world.sim.run();
  ASSERT_EQ(cqes.size(), 40u);
  expect_all_success();
  EXPECT_GT(injector->corrupts_injected(), 0u);
  EXPECT_GT(retransmits(), 0u);
}

TEST_F(FaultWorld, TransientFlapDelaysButCompletes) {
  // All channels down for the first 2 ms; the 64 KB write posted at t~0 is
  // eaten whole, survives on the retransmit timer (with backoff), and lands
  // once the link is back.
  arm("flap=0:2");
  world.sim.spawn(send_many(a, b, 1, 64 * 1024, cqes, times));
  world.sim.run();
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, static_cast<std::uint8_t>(CqeStatus::kSuccess));
  EXPECT_GT(times[0], 2 * sim::kMillisecond);
  EXPECT_GT(retransmits(), 0u);
  EXPECT_EQ(a.qp->state(), QpState::kReadyToSend);
}

TEST_F(FaultWorld, ExhaustedRetryBudgetErrorsQpAndFlushesLaterPosts) {
  // Link down for a full second — longer than the whole backoff ladder
  // (7 transport retries doubling from ~1 ms), so the budget must run out.
  arm("flap=0:1000");
  world.sim.spawn(send_many(a, b, 2, 4096, cqes, times));
  world.sim.run();
  ASSERT_EQ(cqes.size(), 2u);
  // First WR: transport gave up -> completion-with-error, QP dead.
  EXPECT_EQ(cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kRetryExceeded));
  EXPECT_EQ(a.qp->state(), QpState::kError);
  // Second WR posted on the dead QP: flushed, never touches the wire.
  EXPECT_EQ(cqes[1].status,
            static_cast<std::uint8_t>(CqeStatus::kWrFlushError));
  EXPECT_GT(world.sim.metrics().counter("fabric.qp_fatal_errors").value(), 0u);
}

TEST_F(FaultWorld, StallFreezesDoorbellPickup) {
  // WQE fetch frozen for 1 ms; a 1 KB write normally completes in a few us.
  arm("stall=0:1");
  world.sim.spawn(send_many(a, b, 1, 1024, cqes, times));
  world.sim.run();
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, static_cast<std::uint8_t>(CqeStatus::kSuccess));
  EXPECT_GT(times[0], sim::kMillisecond);
}

Task alloc_pd_once(Endpoint& ep, SimTime& done) {
  (void)co_await ep.verbs->alloc_pd();
  done = ep.domain->vcpu().simulation().now();
}

TEST(ControlPath, DelayWindowLengthensHypercallsOnly) {
  auto alloc_time = [](const char* spec) {
    TwoNodeWorld world;
    auto pair = world.make_connected_pair();
    std::unique_ptr<FaultInjector> inj;
    if (spec != nullptr) {
      inj = std::make_unique<FaultInjector>(FaultPlan::parse(spec), 1);
      inj->arm(world.fabric, &world.node_a);
    }
    SimTime done = 0;
    world.sim.spawn(alloc_pd_once(pair.first, done));
    world.sim.run();
    return done;
  };
  const SimTime base = alloc_time(nullptr);
  const SimTime delayed = alloc_time("ctl=0:10:500");
  // The dom0 hypercall round trip grows by exactly the scripted 500 us; the
  // VMM-bypass data path is not represented in this number at all.
  EXPECT_EQ(delayed - base, 500 * sim::kMicrosecond);
}

// --- determinism -------------------------------------------------------------

struct RunFingerprint {
  std::vector<SimTime> times;
  std::uint64_t drops = 0;
  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_drop_scenario(std::uint64_t seed) {
  TwoNodeWorld world;
  auto pair = world.make_connected_pair();
  FaultInjector inj(FaultPlan::parse("drop=0.1"), seed);
  inj.arm(world.fabric, &world.node_a);
  std::vector<Cqe> cqes;
  RunFingerprint fp;
  world.sim.spawn(send_many(pair.first, pair.second, 20, 4096, cqes, fp.times));
  world.sim.run();
  fp.drops = inj.drops_injected();
  return fp;
}

TEST(FaultDeterminism, SameSeedReplaysIdentically) {
  const auto r1 = run_drop_scenario(7);
  const auto r2 = run_drop_scenario(7);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(r1.drops, 0u);
  // ...and the seed genuinely drives the fault pattern.
  const auto r3 = run_drop_scenario(8);
  EXPECT_NE(r1, r3);
}

// --- runner integration: --faults at any --jobs ------------------------------

std::vector<runner::SweepPoint> faulted_points() {
  core::ScenarioConfig base;
  base.warmup = 20 * sim::kMillisecond;
  base.duration = 100 * sim::kMillisecond;
  runner::Sweep sweep(base);
  sweep.axis("cap_pct", {100.0, 40.0},
             [](core::ScenarioConfig& c, double v) { c.intf_cap = v; });
  return sweep.points();
}

TEST(FaultRunner, FaultedSweepIsByteIdenticalAcrossJobCounts) {
  runner::RunnerOptions serial;
  serial.jobs = 1;
  serial.seeds = 2;
  serial.faults = "drop=0.01,flap=30:5";
  serial.metrics_path = "unused";  // turn on per-trial snapshot collection
  runner::RunnerOptions parallel = serial;
  parallel.jobs = 8;

  const auto a = runner::run_sweep(faulted_points(), serial);
  const auto b = runner::run_sweep(faulted_points(), parallel);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].trials.size(), b[p].trials.size());
    for (std::size_t r = 0; r < a[p].trials.size(); ++r) {
      const auto& va = a[p].trials[r].scenario.reporting[0];
      const auto& vb = b[p].trials[r].scenario.reporting[0];
      EXPECT_EQ(va.requests, vb.requests);
      // Bitwise equality, not tolerance: the guarantee is identity.
      EXPECT_EQ(va.client_mean_us, vb.client_mean_us);
      EXPECT_EQ(va.client_latency_us.values(), vb.client_latency_us.values());
    }
  }

  // The faults really fired (the snapshot carries the injector's tallies)...
  double drops = 0.0;
  for (const auto& s : a[0].trials[0].scenario.metrics.samples) {
    if (s.name == "fault.drops_injected") drops = s.value;
  }
  EXPECT_GT(drops, 0.0);

  // ...and the exported artifacts match byte for byte.
  std::ostringstream ma, mb;
  runner::write_metrics_json(ma, a);
  runner::write_metrics_json(mb, b);
  EXPECT_EQ(ma.str(), mb.str());
}

TEST(FaultRunner, CliValidatesFaultSpecsEagerly) {
  const char* ok[] = {"bench", "--faults", "drop=0.01,stall=5:1"};
  const auto opts = runner::parse_options(3, ok);
  EXPECT_EQ(opts.faults, "drop=0.01,stall=5:1");
  const char* bad[] = {"bench", "--faults", "drop=2"};
  EXPECT_THROW((void)runner::parse_options(3, bad), std::invalid_argument);
}

}  // namespace
}  // namespace resex::fault
