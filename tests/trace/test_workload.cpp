#include "trace/workload.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace resex::trace {
namespace {

using namespace resex::sim::literals;

TEST(ArrivalProcess, RejectsBadConfig) {
  EXPECT_THROW(ArrivalProcess({.rate_per_sec = 0.0}, sim::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(ArrivalProcess({.kind = ArrivalKind::kBursty,
                               .rate_per_sec = 100.0, .pareto_shape = 1.0},
                              sim::Rng(1)),
               std::invalid_argument);
}

TEST(ArrivalProcess, FixedRateWithoutJitterIsDeterministic) {
  ArrivalProcess p({.kind = ArrivalKind::kFixedRate, .rate_per_sec = 1000.0,
                    .jitter_frac = 0.0},
                   sim::Rng(1));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.next_gap(), 1_ms);
}

TEST(ArrivalProcess, FixedRateJitterBoundedAndMeanPreserving) {
  ArrivalProcess p({.kind = ArrivalKind::kFixedRate, .rate_per_sec = 1000.0,
                    .jitter_frac = 0.1},
                   sim::Rng(1));
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto g = p.next_gap();
    EXPECT_GE(g, 900_us);
    EXPECT_LE(g, 1100_us);
    sum += static_cast<double>(g);
  }
  EXPECT_NEAR(sum / n, 1e6, 1e3);
}

TEST(ArrivalProcess, InitialPhaseWithinOneGap) {
  ArrivalProcess p({.kind = ArrivalKind::kFixedRate, .rate_per_sec = 1000.0},
                   sim::Rng(2));
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(p.initial_phase(), 1_ms);
  }
}

TEST(ArrivalProcess, PoissonMeanMatchesRate) {
  ArrivalProcess p({.kind = ArrivalKind::kPoisson, .rate_per_sec = 5000.0},
                   sim::Rng(2));
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(p.next_gap());
  EXPECT_NEAR(sum / n, 200000.0, 3000.0);  // 200 us mean gap
}

TEST(ArrivalProcess, BurstyMeanMatchesRateButHeavierTail) {
  ArrivalProcess p({.kind = ArrivalKind::kBursty, .rate_per_sec = 1000.0,
                    .pareto_shape = 1.8},
                   sim::Rng(3));
  double sum = 0.0, max_gap = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double g = static_cast<double>(p.next_gap());
    sum += g;
    max_gap = std::max(max_gap, g);
  }
  EXPECT_NEAR(sum / n, 1e6, 8e4);      // ~1 ms mean gap
  EXPECT_GT(max_gap, 20e6);            // heavy tail: >20x the mean appears
}

TEST(RequestMix, RejectsBadEntries) {
  EXPECT_THROW(RequestMix({}), std::invalid_argument);
  EXPECT_THROW(
      RequestMix({{finance::RequestKind::kQuote, 5, 2, 1.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      RequestMix({{finance::RequestKind::kQuote, 0, 2, 1.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      RequestMix({{finance::RequestKind::kQuote, 1, 2, 0.0}}),
      std::invalid_argument);
}

TEST(RequestMix, SampleRespectsInstrumentRange) {
  RequestMix mix({{finance::RequestKind::kTrade, 3, 7, 1.0}});
  sim::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto d = mix.sample(rng);
    EXPECT_EQ(d.kind, finance::RequestKind::kTrade);
    EXPECT_GE(d.instruments, 3u);
    EXPECT_LE(d.instruments, 7u);
  }
}

TEST(RequestMix, WeightsApproximatelyHonoured) {
  RequestMix mix({{finance::RequestKind::kQuote, 1, 1, 3.0},
                  {finance::RequestKind::kTrade, 1, 1, 1.0}});
  sim::Rng rng(5);
  int quotes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (mix.sample(rng).kind == finance::RequestKind::kQuote) ++quotes;
  }
  EXPECT_NEAR(static_cast<double>(quotes) / n, 0.75, 0.01);
}

TEST(RequestMix, ExchangeDefaultShape) {
  const auto mix = RequestMix::exchange_default();
  ASSERT_EQ(mix.entries().size(), 3u);
  EXPECT_EQ(mix.entries()[0].kind, finance::RequestKind::kQuote);
  EXPECT_GT(mix.entries()[0].weight, mix.entries()[1].weight);
}

TEST(GenerateTrace, CoversDurationAndIsSorted) {
  const auto trace =
      generate_trace({.kind = ArrivalKind::kPoisson, .rate_per_sec = 2000.0},
                     RequestMix::exchange_default(), 1_s, 11);
  ASSERT_GT(trace.size(), 1500u);
  ASSERT_LT(trace.size(), 2500u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].at, trace[i - 1].at);
  }
  EXPECT_LT(trace.back().at, 1_s);
}

TEST(GenerateTrace, DeterministicPerSeed) {
  const auto a =
      generate_trace({.rate_per_sec = 500.0}, RequestMix::exchange_default(),
                     100_ms, 7);
  const auto b =
      generate_trace({.rate_per_sec = 500.0}, RequestMix::exchange_default(),
                     100_ms, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].instruments, b[i].instruments);
  }
}

TEST(TraceIo, SaveLoadRoundTrip) {
  const std::string path = "/tmp/resex_trace_test.csv";
  const auto trace =
      generate_trace({.rate_per_sec = 1000.0}, RequestMix::exchange_default(),
                     50_ms, 13);
  save_trace(trace, path);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].at, trace[i].at);
    EXPECT_EQ(loaded[i].kind, trace[i].kind);
    EXPECT_EQ(loaded[i].instruments, trace[i].instruments);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsGarbage) {
  const std::string path = "/tmp/resex_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "at_ns,kind,instruments\n1,9,abc\n";
  }
  EXPECT_THROW((void)load_trace(path), std::runtime_error);
  EXPECT_THROW((void)load_trace("/nonexistent/file.csv"),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace resex::trace
