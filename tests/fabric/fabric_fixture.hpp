#pragma once
// Shared scaffolding for fabric tests: two nodes on one switch, plus a
// convenience endpoint bundle (PD + CQs + QP + one registered buffer).
//
// Control-path setup here calls the HCA directly (synchronously) so tests
// can wire a world without running the simulation; the Verbs control-path
// costs are covered by dedicated tests.

#include <cstring>
#include <memory>

#include "fabric/hca.hpp"
#include "fabric/verbs.hpp"
#include "hv/node.hpp"
#include "sim/simulation.hpp"

namespace resex::fabric::testing {

/// Test fabric config with round numbers: 1 ns/byte exactly
/// (1 KiB packet = 1024 ns), making timings easy to reason about.
inline FabricConfig test_config() {
  FabricConfig cfg;
  cfg.link_bytes_per_sec = 1e9;  // 1 ns per byte
  return cfg;
}

struct Endpoint {
  hv::Domain* domain = nullptr;
  std::unique_ptr<Verbs> verbs;
  std::uint32_t pd = 0;
  CompletionQueue* send_cq = nullptr;
  CompletionQueue* recv_cq = nullptr;
  QueuePair* qp = nullptr;
  mem::GuestAddr buf = 0;
  mem::RegisteredRegion mr;
};

/// Create a guest domain with an endpoint on the given HCA (free function so
/// custom topologies — multi-switch worlds, span tests — can reuse it).
inline Endpoint make_endpoint_on(hv::Node& node, Hca& hca,
                                 const std::string& name,
                                 std::size_t buf_bytes = 64 * 1024,
                                 std::uint32_t cq_entries = 1024) {
  Endpoint ep;
  ep.domain = &node.create_domain(
      {.name = name, .mem_pages = 2048});  // 8 MiB
  ep.verbs = std::make_unique<Verbs>(hca, *ep.domain);
  ep.pd = hca.alloc_pd(*ep.domain);
  ep.send_cq = &hca.create_cq(*ep.domain, cq_entries);
  ep.recv_cq = &hca.create_cq(*ep.domain, cq_entries);
  ep.qp = &hca.create_qp(*ep.domain, ep.pd, *ep.send_cq, *ep.recv_cq);
  ep.buf = ep.domain->allocator().allocate(buf_bytes, mem::kPageSize);
  ep.mr = hca.reg_mr(ep.pd, *ep.domain, ep.buf, buf_bytes,
                     mem::Access::kLocalWrite | mem::Access::kRemoteWrite |
                         mem::Access::kRemoteRead);
  return ep;
}

struct TwoNodeWorld {
  sim::Simulation sim;
  hv::Node node_a{sim, "A", 8};
  hv::Node node_b{sim, "B", 8};
  Fabric fabric;
  Hca* hca_a;
  Hca* hca_b;

  explicit TwoNodeWorld(FabricConfig cfg = test_config()) : fabric(sim, cfg) {
    hca_a = &fabric.add_node(node_a);
    hca_b = &fabric.add_node(node_b);
  }

  /// Create a guest domain with an endpoint on the given HCA.
  Endpoint make_endpoint(hv::Node& node, Hca& hca, const std::string& name,
                         std::size_t buf_bytes = 64 * 1024,
                         std::uint32_t cq_entries = 1024) {
    return make_endpoint_on(node, hca, name, buf_bytes, cq_entries);
  }

  /// Endpoint pair connected across the two nodes.
  std::pair<Endpoint, Endpoint> make_connected_pair(
      std::size_t buf_bytes = 64 * 1024) {
    Endpoint a = make_endpoint(node_a, *hca_a, "vmA", buf_bytes);
    Endpoint b = make_endpoint(node_b, *hca_b, "vmB", buf_bytes);
    Fabric::connect(*a.qp, *b.qp);
    return {std::move(a), std::move(b)};
  }
};

}  // namespace resex::fabric::testing
