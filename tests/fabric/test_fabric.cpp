#include <gtest/gtest.h>

#include <cstring>

#include "fabric_fixture.hpp"

namespace resex::fabric {
namespace {

using namespace resex::sim::literals;
using sim::SimTime;
using sim::Task;
using testing::Endpoint;
using testing::TwoNodeWorld;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

/// Post a send WR and record its completion (CQE + observation time).
Task post_and_complete(Endpoint& ep, SendWr wr, std::vector<Cqe>& cqes,
                       std::vector<SimTime>& times) {
  co_await ep.verbs->post_send(*ep.qp, std::move(wr));
  cqes.push_back(co_await ep.verbs->next_cqe(*ep.send_cq));
  times.push_back(ep.domain->vcpu().simulation().now());
}

/// Wait for one receive-side CQE.
Task await_recv(Endpoint& ep, std::vector<Cqe>& cqes,
                std::vector<SimTime>& times) {
  cqes.push_back(co_await ep.verbs->next_cqe(*ep.recv_cq));
  times.push_back(ep.domain->vcpu().simulation().now());
}

SendWr write_imm_wr(const Endpoint& src, const Endpoint& dst,
                    std::uint32_t length, std::uint64_t wr_id = 1,
                    std::uint32_t imm = 0) {
  SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = Opcode::kRdmaWriteWithImm;
  wr.local_addr = src.buf;
  wr.lkey = src.mr.lkey;
  wr.length = length;
  wr.remote_addr = dst.buf;
  wr.rkey = dst.mr.rkey;
  wr.imm_data = imm;
  return wr;
}

struct FabricEndToEnd : ::testing::Test {
  TwoNodeWorld world;
  std::pair<Endpoint, Endpoint> pair = world.make_connected_pair();
  Endpoint& a = pair.first;
  Endpoint& b = pair.second;
  std::vector<Cqe> send_cqes, recv_cqes;
  std::vector<SimTime> send_times, recv_times;
};

TEST_F(FabricEndToEnd, WriteWithImmDeliversHeaderAndBothCqes) {
  auto wr = write_imm_wr(a, b, 4096, /*wr_id=*/77, /*imm=*/0xAB);
  wr.header = bytes_of("hello-rdma");
  b.qp->post_recv(RecvWr{.wr_id = 501, .addr = 0, .lkey = 0, .length = 0});
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.spawn(await_recv(b, recv_cqes, recv_times));
  world.sim.run();

  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].wr_id, 77u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kSuccess));
  EXPECT_EQ(send_cqes[0].byte_len, 4096u);

  ASSERT_EQ(recv_cqes.size(), 1u);
  EXPECT_EQ(recv_cqes[0].wr_id, 501u);
  EXPECT_EQ(recv_cqes[0].imm_data, 0xABu);
  EXPECT_EQ(recv_cqes[0].byte_len, 4096u);
  EXPECT_EQ(recv_cqes[0].opcode,
            static_cast<std::uint8_t>(CqeOpcode::kRecvRdmaWithImm));

  // Header bytes really landed in B's memory at the remote address.
  std::string landed(10, '\0');
  std::vector<std::byte> raw(10);
  b.domain->memory().read(b.buf, raw);
  std::memcpy(landed.data(), raw.data(), raw.size());
  EXPECT_EQ(landed, "hello-rdma");
}

TEST_F(FabricEndToEnd, PlainWriteProducesNoReceiverCqe) {
  auto wr = write_imm_wr(a, b, 1024);
  wr.opcode = Opcode::kRdmaWrite;
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.run();
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kSuccess));
  EXPECT_EQ(b.recv_cq->produced(), 0u);
}

TEST_F(FabricEndToEnd, SendRecvDeliversToPostedBuffer) {
  SendWr wr;
  wr.wr_id = 9;
  wr.opcode = Opcode::kSend;
  wr.local_addr = a.buf;
  wr.lkey = a.mr.lkey;
  wr.length = 2048;
  wr.header = bytes_of("send-path");
  b.qp->post_recv(RecvWr{.wr_id = 11, .addr = b.buf + 8192,
                         .lkey = b.mr.lkey, .length = 4096});
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.spawn(await_recv(b, recv_cqes, recv_times));
  world.sim.run();

  ASSERT_EQ(recv_cqes.size(), 1u);
  EXPECT_EQ(recv_cqes[0].wr_id, 11u);
  EXPECT_EQ(recv_cqes[0].opcode, static_cast<std::uint8_t>(CqeOpcode::kRecv));
  std::vector<std::byte> raw(9);
  b.domain->memory().read(b.buf + 8192, raw);
  std::string landed(9, '\0');
  std::memcpy(landed.data(), raw.data(), raw.size());
  EXPECT_EQ(landed, "send-path");
}

TEST(FabricRnr, WriteImmWithoutRecvExhaustsRetries) {
  auto cfg = testing::test_config();
  cfg.rnr_retry_limit = 3;
  TwoNodeWorld world(cfg);
  auto [a, b] = world.make_connected_pair();
  std::vector<Cqe> send_cqes;
  std::vector<SimTime> send_times;
  world.sim.spawn(
      post_and_complete(a, write_imm_wr(a, b, 1024), send_cqes, send_times));
  world.sim.run();
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kRnrRetryExceeded));
  EXPECT_EQ(b.recv_cq->produced(), 0u);
  // The error CQE arrives only after the 3 retry delays elapsed.
  EXPECT_GE(send_times[0], 3u * cfg.rnr_retry_delay);
}

TEST(FabricRnr, RetryDeliversOnceRecvIsPosted) {
  TwoNodeWorld world;  // default config: infinite RNR retry
  auto [a, b] = world.make_connected_pair();
  std::vector<Cqe> send_cqes, recv_cqes;
  std::vector<SimTime> send_times, recv_times;
  world.sim.spawn(
      post_and_complete(a, write_imm_wr(a, b, 1024), send_cqes, send_times));
  world.sim.spawn(await_recv(b, recv_cqes, recv_times));
  // The receive WQE shows up only 2 ms after the message arrived: the HCA
  // must keep NAK-retrying and deliver then.
  world.sim.schedule_at(2 * sim::kMillisecond,
                        [&b = b] { b.qp->post_recv(RecvWr{.wr_id = 9}); });
  world.sim.run_until(5 * sim::kMillisecond);
  ASSERT_EQ(recv_cqes.size(), 1u);
  EXPECT_EQ(recv_cqes[0].wr_id, 9u);
  EXPECT_GE(recv_times[0], 2 * sim::kMillisecond);
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kSuccess));
}

TEST_F(FabricEndToEnd, SendToShortBufferErrsBothSides) {
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.local_addr = a.buf;
  wr.lkey = a.mr.lkey;
  wr.length = 4096;
  b.qp->post_recv(RecvWr{.wr_id = 1, .addr = b.buf, .lkey = b.mr.lkey,
                         .length = 1024});  // too small
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.spawn(await_recv(b, recv_cqes, recv_times));
  world.sim.run();
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kLocalLengthError));
  ASSERT_EQ(recv_cqes.size(), 1u);
  EXPECT_EQ(recv_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kLocalLengthError));
}

TEST_F(FabricEndToEnd, BadRkeyIsRemoteAccessError) {
  auto wr = write_imm_wr(a, b, 1024);
  wr.rkey = 0xDEAD00;
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.run();
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kRemoteAccessError));
}

TEST_F(FabricEndToEnd, WriteBeyondRegisteredRangeRejected) {
  auto wr = write_imm_wr(a, b, 1024);
  wr.remote_addr = b.buf + 64 * 1024 - 10;  // runs off the MR's end
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.run();
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kRemoteAccessError));
}

TEST_F(FabricEndToEnd, BadLkeyIsLocalProtectionError) {
  auto wr = write_imm_wr(a, b, 1024);
  wr.lkey = 0xBEEF00;
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.run();
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kLocalProtectionError));
}

TEST_F(FabricEndToEnd, RdmaReadCompletesAtRequester) {
  SendWr wr;
  wr.wr_id = 33;
  wr.opcode = Opcode::kRdmaRead;
  wr.local_addr = a.buf;
  wr.lkey = a.mr.lkey;
  wr.length = 8192;
  wr.remote_addr = b.buf;
  wr.rkey = b.mr.rkey;
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.run();
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].opcode,
            static_cast<std::uint8_t>(CqeOpcode::kRdmaReadComplete));
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kSuccess));
  // Round trip: request one way + 8 data packets back; must exceed the
  // one-way time of an equal-size write.
  EXPECT_GT(send_times[0], 8u * 1024u + 1000u);
}

TEST_F(FabricEndToEnd, RdmaReadWithoutRemoteReadRightFails) {
  // Register a write-only region on B and try to read it.
  const auto wo = world.hca_b->reg_mr(b.pd, *b.domain, b.buf + 32768, 1024,
                                      mem::Access::kRemoteWrite);
  SendWr wr;
  wr.opcode = Opcode::kRdmaRead;
  wr.local_addr = a.buf;
  wr.lkey = a.mr.lkey;
  wr.length = 512;
  wr.remote_addr = b.buf + 32768;
  wr.rkey = wo.rkey;
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.run();
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].status,
            static_cast<std::uint8_t>(CqeStatus::kRemoteAccessError));
}

TEST_F(FabricEndToEnd, UnsignaledSuccessProducesNoCqeButErrorsDo) {
  auto ok = write_imm_wr(a, b, 1024);
  ok.opcode = Opcode::kRdmaWrite;
  ok.signaled = false;
  auto bad = ok;
  bad.rkey = 0xBAD00;
  world.sim.spawn([](Endpoint& ep, SendWr w1, SendWr w2) -> Task {
    co_await ep.verbs->post_send(*ep.qp, std::move(w1));
    co_await ep.verbs->post_send(*ep.qp, std::move(w2));
  }(a, ok, bad));
  world.sim.run();
  EXPECT_EQ(a.send_cq->produced(), 1u);  // only the error
  const auto cqe = a.send_cq->poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status,
            static_cast<std::uint8_t>(CqeStatus::kRemoteAccessError));
}

TEST_F(FabricEndToEnd, LatencyScalesWithMessageSize) {
  b.qp->post_recv(RecvWr{.wr_id = 1});
  b.qp->post_recv(RecvWr{.wr_id = 2});
  world.sim.spawn([](Endpoint& src, Endpoint& dst, std::vector<Cqe>& cqes,
                     std::vector<SimTime>& times) -> Task {
    auto& sim = src.domain->vcpu().simulation();
    const SimTime t0 = sim.now();
    co_await src.verbs->post_send(*src.qp, write_imm_wr(src, dst, 16 * 1024));
    (void)co_await src.verbs->next_cqe(*src.send_cq);
    const SimTime t1 = sim.now();
    co_await src.verbs->post_send(*src.qp, write_imm_wr(src, dst, 32 * 1024));
    (void)co_await src.verbs->next_cqe(*src.send_cq);
    const SimTime t2 = sim.now();
    times.push_back(t1 - t0);
    times.push_back(t2 - t1);
    cqes.clear();
  }(a, b, send_cqes, send_times));
  world.sim.run();
  ASSERT_EQ(send_times.size(), 2u);
  // Serialization dominates: doubling the size roughly doubles latency.
  const double ratio = static_cast<double>(send_times[1]) /
                       static_cast<double>(send_times[0]);
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST_F(FabricEndToEnd, SharedUplinkInterferenceInflatesLatency) {
  // Second pair of VMs: C on node A streams large messages to D on node B,
  // sharing A's uplink with the measured A->B flow.
  Endpoint c = world.make_endpoint(world.node_a, *world.hca_a, "vmC",
                                   2 * 1024 * 1024);
  Endpoint d = world.make_endpoint(world.node_b, *world.hca_b, "vmD",
                                   2 * 1024 * 1024);
  Fabric::connect(*c.qp, *d.qp);

  // Baseline: measure a 64 KiB write alone.
  SimTime solo = 0, contended = 0;
  b.qp->post_recv(RecvWr{.wr_id = 1});
  b.qp->post_recv(RecvWr{.wr_id = 2});
  world.sim.spawn([](Endpoint& src, Endpoint& dst, SimTime& out) -> Task {
    auto& sim = src.domain->vcpu().simulation();
    const SimTime t0 = sim.now();
    co_await src.verbs->post_send(*src.qp, write_imm_wr(src, dst, 64 * 1024));
    (void)co_await src.verbs->next_cqe(*src.send_cq);
    out = sim.now() - t0;
  }(a, b, solo));
  world.sim.run();

  // Contended: C streams continuously while A repeats the measurement.
  world.sim.spawn([](Endpoint& src, Endpoint& dst) -> Task {
    for (int i = 0; i < 50; ++i) {
      SendWr wr;
      wr.opcode = Opcode::kRdmaWrite;
      wr.local_addr = src.buf;
      wr.lkey = src.mr.lkey;
      wr.length = 256 * 1024;
      wr.remote_addr = dst.buf;
      wr.rkey = dst.mr.rkey;
      co_await src.verbs->post_send(*src.qp, wr);
      (void)co_await src.verbs->next_cqe(*src.send_cq);
    }
  }(c, d));
  world.sim.spawn([](Endpoint& src, Endpoint& dst, SimTime& out) -> Task {
    auto& sim = src.domain->vcpu().simulation();
    co_await sim.delay(300 * sim::kMicrosecond);  // let C's stream ramp up
    const SimTime t0 = sim.now();
    co_await src.verbs->post_send(*src.qp, write_imm_wr(src, dst, 64 * 1024,
                                                        /*wr_id=*/2));
    (void)co_await src.verbs->next_cqe(*src.send_cq);
    out = sim.now() - t0;
  }(a, b, contended));
  world.sim.run();

  EXPECT_GT(contended, solo + solo / 2)
      << "solo=" << solo << " contended=" << contended;
}

TEST_F(FabricEndToEnd, PerQpTrafficCounters) {
  auto wr = write_imm_wr(a, b, 10 * 1024);
  wr.opcode = Opcode::kRdmaWrite;
  world.sim.spawn(post_and_complete(a, wr, send_cqes, send_times));
  world.sim.run();
  EXPECT_EQ(a.qp->bytes_sent(), 10u * 1024u);
  EXPECT_EQ(a.qp->msgs_sent(), 1u);
  EXPECT_EQ(world.hca_a->uplink().bytes_sent(), 10u * 1024u);
  EXPECT_EQ(world.hca_a->uplink().packets_sent(), 10u);
  EXPECT_EQ(world.hca_b->downlink().packets_sent(), 10u);
}

TEST_F(FabricEndToEnd, NextCqeBusyPollChargesCpu) {
  b.qp->post_recv(RecvWr{.wr_id = 1});
  world.sim.spawn(
      post_and_complete(a, write_imm_wr(a, b, 64 * 1024), send_cqes,
                        send_times));
  world.sim.run();
  // The sender busy-polled for the whole ~65 us transfer; XenStat must show
  // CPU burned comparable to the elapsed time.
  const auto busy = a.domain->vcpu().busy_ns();
  EXPECT_GT(busy, 50 * sim::kMicrosecond);
}

TEST(FabricControl, PostSendValidation) {
  TwoNodeWorld world;
  Endpoint lone = world.make_endpoint(world.node_a, *world.hca_a, "lone");
  SendWr wr;
  EXPECT_THROW(world.hca_a->post_send(*lone.qp, wr), std::logic_error);

  auto [a, b] = world.make_connected_pair();
  SendWr bad;
  bad.length = 4;
  bad.header = std::vector<std::byte>(16);
  EXPECT_THROW(world.hca_a->post_send(*a.qp, bad), std::invalid_argument);
}

TEST(FabricControl, ZeroLengthMessageCannotSmuggleHeaderBytes) {
  // Regression: validate_post used to exempt wr.length == 0 from the
  // header-length check, so a zero-byte message could carry header bytes
  // that dma_header would write even though the TPT only validated a
  // zero-length access.
  TwoNodeWorld world;
  auto [a, b] = world.make_connected_pair();
  SendWr bad;
  bad.opcode = Opcode::kSend;
  bad.local_addr = a.buf;
  bad.lkey = a.mr.lkey;
  bad.length = 0;
  bad.header = std::vector<std::byte>(16);
  EXPECT_THROW(world.hca_a->post_send(*a.qp, bad), std::invalid_argument);

  // A genuinely empty zero-length message is still accepted.
  SendWr ok = bad;
  ok.header.clear();
  EXPECT_NO_THROW(world.hca_a->post_send(*a.qp, ok));
}

TEST(FabricControl, PdOwnershipEnforced) {
  TwoNodeWorld world;
  Endpoint a = world.make_endpoint(world.node_a, *world.hca_a, "a");
  hv::Domain& other = world.node_a.create_domain({.name = "other"});
  EXPECT_THROW(
      (void)world.hca_a->reg_mr(a.pd, other, 0, 64, mem::Access::kNone),
      std::invalid_argument);
  auto& cq = world.hca_a->create_cq(other, 16);
  EXPECT_THROW((void)world.hca_a->create_qp(other, a.pd, cq, cq),
               std::invalid_argument);
}

TEST(FabricControl, RegMrBoundsChecked) {
  TwoNodeWorld world;
  Endpoint a = world.make_endpoint(world.node_a, *world.hca_a, "a");
  EXPECT_THROW((void)world.hca_a->reg_mr(
                   a.pd, *a.domain, a.domain->memory().size_bytes() - 16, 64,
                   mem::Access::kNone),
               mem::BadGuestAccess);
}

TEST(FabricControl, DeregMrInvalidatesAndForgetOwner) {
  TwoNodeWorld world;
  Endpoint a = world.make_endpoint(world.node_a, *world.hca_a, "a");
  EXPECT_TRUE(world.hca_a->dereg_mr(a.mr.lkey));
  EXPECT_FALSE(world.hca_a->dereg_mr(a.mr.lkey));
}

TEST(FabricControl, DomainCqsLookup) {
  TwoNodeWorld world;
  Endpoint a = world.make_endpoint(world.node_a, *world.hca_a, "a");
  Endpoint b2 = world.make_endpoint(world.node_a, *world.hca_a, "b2");
  const auto cqs_a = world.hca_a->domain_cqs(a.domain->id());
  EXPECT_EQ(cqs_a.size(), 2u);  // send + recv
  const auto cqs_b = world.hca_a->domain_cqs(b2.domain->id());
  EXPECT_EQ(cqs_b.size(), 2u);
  EXPECT_TRUE(world.hca_a->domain_cqs(12345).empty());
}

TEST(FabricControl, VerbsControlPathCostsWallClock) {
  TwoNodeWorld world;
  hv::Domain& dom = world.node_a.create_domain({.name = "vm"});
  Verbs verbs(*world.hca_a, dom);
  sim::SimTime done = 0;
  world.sim.spawn([](Verbs& v, sim::SimTime& out) -> Task {
    const auto pd = co_await v.alloc_pd();
    auto* cq = co_await v.create_cq(64);
    auto* cq2 = co_await v.create_cq(64);
    (void)co_await v.create_qp(pd, *cq, *cq2);
    out = v.vcpu().simulation().now();
  }(verbs, done));
  world.sim.run();
  // Four control-path trips at ~27 us each.
  EXPECT_GT(done, 100 * sim::kMicrosecond);
}

TEST(FabricControl, FabricAccessors) {
  TwoNodeWorld world;
  EXPECT_EQ(world.fabric.hca_count(), 2u);
  EXPECT_EQ(&world.fabric.hca(0), world.hca_a);
  EXPECT_EQ(world.hca_a->id(), 0u);
  EXPECT_EQ(world.hca_b->id(), 1u);
  EXPECT_THROW((void)world.fabric.hca(5), std::out_of_range);
  FabricConfig bad;
  bad.mtu_bytes = 0;
  EXPECT_THROW(Fabric(world.sim, bad), std::invalid_argument);
}

}  // namespace
}  // namespace resex::fabric
