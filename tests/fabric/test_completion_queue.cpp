#include "fabric/completion_queue.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace resex::fabric {
namespace {

using namespace resex::sim::literals;
using sim::Simulation;
using sim::Task;

struct CqFixture : ::testing::Test {
  Simulation sim;
  mem::GuestMemory memory{8};
  CompletionQueue cq{sim, memory, 0, 8, 1};
};

Cqe make_cqe(std::uint64_t wr_id) {
  Cqe c;
  c.wr_id = wr_id;
  c.qp_num = 7;
  c.byte_len = 123;
  c.status = static_cast<std::uint8_t>(CqeStatus::kSuccess);
  return c;
}

TEST_F(CqFixture, RejectsBadConstruction) {
  EXPECT_THROW(CompletionQueue(sim, memory, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(CompletionQueue(sim, memory, 64, 4, 1), std::invalid_argument);
}

TEST_F(CqFixture, EmptyInitially) {
  EXPECT_FALSE(cq.has_entry());
  EXPECT_FALSE(cq.poll().has_value());
  EXPECT_EQ(cq.produced(), 0u);
  EXPECT_EQ(cq.consumed(), 0u);
}

TEST_F(CqFixture, ProduceThenPollRoundTrips) {
  cq.produce(make_cqe(42));
  EXPECT_TRUE(cq.has_entry());
  const auto got = cq.poll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->wr_id, 42u);
  EXPECT_EQ(got->qp_num, 7u);
  EXPECT_EQ(got->byte_len, 123u);
  EXPECT_FALSE(cq.has_entry());
  EXPECT_EQ(cq.consumed(), 1u);
}

TEST_F(CqFixture, FifoOrder) {
  for (std::uint64_t i = 0; i < 5; ++i) cq.produce(make_cqe(i));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto got = cq.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->wr_id, i);
  }
}

TEST_F(CqFixture, TimestampIsProductionTime) {
  sim.schedule_at(5_us, [&] { cq.produce(make_cqe(1)); });
  sim.run();
  const auto got = cq.poll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->timestamp_ns, 5_us);
}

TEST_F(CqFixture, OwnerBitLapsAroundRing) {
  // Fill and drain the 8-entry ring three times; validity must hold on each
  // lap (owner bit alternates).
  for (int lap = 0; lap < 3; ++lap) {
    for (std::uint64_t i = 0; i < 8; ++i) cq.produce(make_cqe(i));
    for (std::uint64_t i = 0; i < 8; ++i) {
      const auto got = cq.poll();
      ASSERT_TRUE(got.has_value()) << "lap " << lap << " entry " << i;
      EXPECT_EQ(got->wr_id, i);
    }
    EXPECT_FALSE(cq.has_entry());
  }
}

TEST_F(CqFixture, OverrunThrows) {
  for (std::uint64_t i = 0; i < 8; ++i) cq.produce(make_cqe(i));
  EXPECT_THROW(cq.produce(make_cqe(9)), std::runtime_error);
}

TEST_F(CqFixture, CqesAreRealBytesInGuestMemory) {
  cq.produce(make_cqe(0xCAFE));
  const auto raw = memory.read_obj<Cqe>(0);
  EXPECT_EQ(raw.wr_id, 0xCAFEu);
  EXPECT_EQ(raw.owner, 1u);  // lap 0 owner bit
}

Task wait_then_log(CompletionQueue& cq, hv::Vcpu& vcpu,
                   std::vector<sim::SimTime>& log) {
  co_await cq.wait(vcpu);
  log.push_back(vcpu.simulation().now());
}

TEST_F(CqFixture, WaitResumesOnProduce) {
  hv::Vcpu vcpu(sim, 1, hv::SliceSchedule(10_ms, 0, 10_ms));
  std::vector<sim::SimTime> log;
  sim.spawn(wait_then_log(cq, vcpu, log));
  sim.schedule_at(3_us, [&] { cq.produce(make_cqe(1)); });
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 3_us);
}

TEST_F(CqFixture, WaitIsImmediateIfEntryAvailable) {
  hv::Vcpu vcpu(sim, 1, hv::SliceSchedule(10_ms, 0, 10_ms));
  cq.produce(make_cqe(1));
  std::vector<sim::SimTime> log;
  sim.spawn(wait_then_log(cq, vcpu, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 0u);
}

TEST_F(CqFixture, DescheduledVcpuObservesCompletionLate) {
  // VCPU runs only the first 1 ms of each 10 ms slice; a CQE produced at
  // 3 ms is not observed until the next window at 10 ms.
  hv::Vcpu vcpu(sim, 1, hv::SliceSchedule(10_ms, 0, 1_ms));
  std::vector<sim::SimTime> log;
  sim.spawn(wait_then_log(cq, vcpu, log));
  sim.schedule_at(3_ms, [&] { cq.produce(make_cqe(1)); });
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 10_ms);
}

TEST_F(CqFixture, MultipleWaitersAllWake) {
  hv::Vcpu vcpu(sim, 1, hv::SliceSchedule(10_ms, 0, 10_ms));
  std::vector<sim::SimTime> log;
  sim.spawn(wait_then_log(cq, vcpu, log));
  sim.spawn(wait_then_log(cq, vcpu, log));
  sim.schedule_at(1_us, [&] { cq.produce(make_cqe(1)); });
  sim.run();
  EXPECT_EQ(log.size(), 2u);
}

}  // namespace
}  // namespace resex::fabric
