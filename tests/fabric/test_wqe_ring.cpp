// Send-queue ring + UAR doorbell tests: the post path's bytes really live
// in guest memory and the HCA trusts only what it fetches from there.

#include <gtest/gtest.h>

#include <cstring>

#include "fabric_fixture.hpp"

namespace resex::fabric {
namespace {

using namespace resex::sim::literals;
using sim::Task;
using testing::Endpoint;
using testing::TwoNodeWorld;

SendWr sample_wr(const Endpoint& src, const Endpoint& dst) {
  SendWr wr;
  wr.wr_id = 0xABCD;
  wr.opcode = Opcode::kRdmaWriteWithImm;
  wr.local_addr = src.buf;
  wr.lkey = src.mr.lkey;
  wr.length = 2048;
  wr.remote_addr = dst.buf;
  wr.rkey = dst.mr.rkey;
  wr.imm_data = 7;
  std::string h = "inline-header";
  wr.header.resize(h.size());
  std::memcpy(wr.header.data(), h.data(), h.size());
  return wr;
}

TEST(WqeRing, WriteWqeSerializesIntoGuestMemory) {
  TwoNodeWorld world;
  auto [a, b] = world.make_connected_pair();
  const auto wr = sample_wr(a, b);
  a.qp->write_wqe(wr);
  EXPECT_EQ(a.qp->sq_produced(), 1u);
  // Raw bytes at the ring base parse back to the same WQE fields.
  const auto raw = a.domain->memory().read_obj<Wqe>(a.qp->sq_base());
  EXPECT_EQ(raw.wr_id, 0xABCDu);
  EXPECT_EQ(raw.length, 2048u);
  EXPECT_EQ(raw.imm_data, 7u);
  EXPECT_EQ(raw.opcode, static_cast<std::uint8_t>(Opcode::kRdmaWriteWithImm));
  EXPECT_EQ(raw.inline_len, 13u);
  EXPECT_TRUE(raw.flags & Wqe::kFlagSignaled);
}

TEST(WqeRing, DoorbellRecordAnnouncesProducerCount) {
  TwoNodeWorld world;
  auto [a, b] = world.make_connected_pair();
  EXPECT_EQ(a.qp->doorbell_value(), 0u);
  a.qp->write_wqe(sample_wr(a, b));
  a.qp->write_wqe(sample_wr(a, b));
  EXPECT_EQ(a.qp->doorbell_value(), 2u);
}

TEST(WqeRing, FetchRoundTripsIncludingInlineHeader) {
  TwoNodeWorld world;
  auto [a, b] = world.make_connected_pair();
  const auto wr = sample_wr(a, b);
  a.qp->write_wqe(wr);
  const SendWr fetched = a.qp->fetch_wqe(0);
  EXPECT_EQ(fetched.wr_id, wr.wr_id);
  EXPECT_EQ(fetched.opcode, wr.opcode);
  EXPECT_EQ(fetched.local_addr, wr.local_addr);
  EXPECT_EQ(fetched.remote_addr, wr.remote_addr);
  EXPECT_EQ(fetched.length, wr.length);
  EXPECT_EQ(fetched.lkey, wr.lkey);
  EXPECT_EQ(fetched.rkey, wr.rkey);
  EXPECT_EQ(fetched.imm_data, wr.imm_data);
  EXPECT_EQ(fetched.signaled, wr.signaled);
  EXPECT_EQ(fetched.header, wr.header);
  EXPECT_EQ(a.qp->sq_fetched(), 1u);
}

TEST(WqeRing, OverflowWithoutFetchThrows) {
  TwoNodeWorld world;
  auto [a, b] = world.make_connected_pair();
  for (std::uint32_t i = 0; i < a.qp->sq_entries(); ++i) {
    a.qp->write_wqe(sample_wr(a, b));
  }
  EXPECT_THROW(a.qp->write_wqe(sample_wr(a, b)), std::runtime_error);
}

TEST(WqeRing, InlineHeaderTooLargeThrows) {
  TwoNodeWorld world;
  auto [a, b] = world.make_connected_pair();
  auto wr = sample_wr(a, b);
  wr.header.resize(kMaxInlineBytes + 1);
  EXPECT_THROW(a.qp->write_wqe(wr), std::invalid_argument);
}

TEST(WqeRing, UninstalledSendQueueThrows) {
  TwoNodeWorld world;
  Endpoint a = world.make_endpoint(world.node_a, *world.hca_a, "a");
  a.qp->set_send_queue(0, 0, 0);
  SendWr wr;
  EXPECT_THROW(a.qp->write_wqe(wr), std::logic_error);
}

TEST(WqeRing, EndToEndThroughRingDeliversHeader) {
  // Full path: Verbs -> WQE bytes in guest memory -> doorbell -> HCA fetch
  // -> wire -> DMA at the target. The header must survive the whole trip.
  TwoNodeWorld world;
  auto [a, b] = world.make_connected_pair();
  b.qp->post_recv(RecvWr{.wr_id = 1});
  std::vector<Cqe> cqes;
  world.sim.spawn([](Endpoint& src, Endpoint& dst,
                     std::vector<Cqe>& out) -> Task {
    co_await src.verbs->post_send(*src.qp, sample_wr(src, dst));
    out.push_back(co_await src.verbs->next_cqe(*src.send_cq));
  }(a, b, cqes));
  world.sim.run();
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].status, static_cast<std::uint8_t>(CqeStatus::kSuccess));
  std::string landed(13, '\0');
  std::vector<std::byte> raw(13);
  b.domain->memory().read(b.buf, raw);
  std::memcpy(landed.data(), raw.data(), raw.size());
  EXPECT_EQ(landed, "inline-header");
  EXPECT_EQ(a.qp->sq_fetched(), 1u);
}

TEST(WqeRing, RingWrapsAcrossManyLaps) {
  TwoNodeWorld world;
  auto [a, b] = world.make_connected_pair();
  std::vector<Cqe> cqes;
  const int total = 300;  // > 2 laps of the 128-entry ring
  world.sim.spawn([](Endpoint& src, Endpoint& dst, std::vector<Cqe>& out,
                     int n) -> Task {
    for (int i = 0; i < n; ++i) {
      auto wr = sample_wr(src, dst);
      wr.opcode = Opcode::kRdmaWrite;
      wr.wr_id = static_cast<std::uint64_t>(i);
      co_await src.verbs->post_send(*src.qp, wr);
      out.push_back(co_await src.verbs->next_cqe(*src.send_cq));
    }
  }(a, b, cqes, total));
  world.sim.run();
  ASSERT_EQ(cqes.size(), static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(cqes[static_cast<std::size_t>(i)].wr_id,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(a.qp->sq_produced(), static_cast<std::uint64_t>(total));
  EXPECT_EQ(a.qp->sq_fetched(), static_cast<std::uint64_t>(total));
}

}  // namespace
}  // namespace resex::fabric
