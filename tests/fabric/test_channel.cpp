#include "fabric/channel.hpp"

#include <gtest/gtest.h>

#include "fabric_fixture.hpp"

namespace resex::fabric {
namespace {

using namespace resex::sim::literals;
using testing::TwoNodeWorld;

struct ChannelFixture : ::testing::Test {
  TwoNodeWorld world;
  FabricConfig cfg = testing::test_config();
  Channel chan{world.sim, cfg, "test"};
  std::vector<std::pair<sim::SimTime, QpNum>> delivered;
  testing::Endpoint ep_a = world.make_endpoint(world.node_a, *world.hca_a,
                                               "src1");
  testing::Endpoint ep_b = world.make_endpoint(world.node_a, *world.hca_a,
                                               "src2");

  void SetUp() override {
    chan.set_sink([this](detail::Packet p) {
      delivered.emplace_back(world.sim.now(), p.transfer->src_qp->num());
    });
  }

  std::shared_ptr<detail::Transfer> make_transfer(QueuePair& qp,
                                                  std::uint32_t bytes) {
    auto t = std::make_shared<detail::Transfer>();
    t->wr.length = bytes;
    t->src_qp = &qp;
    t->dst_qp = ep_b.qp;
    t->wire_length = bytes;
    t->total_packets = cfg.packets_for(bytes);
    return t;
  }

  void enqueue_message(QueuePair& qp, std::uint32_t bytes) {
    auto t = make_transfer(qp, bytes);
    for (std::uint32_t i = 0; i < t->total_packets; ++i) {
      const std::uint32_t remaining = bytes - i * cfg.mtu_bytes;
      chan.enqueue(detail::Packet{
          t, i, std::min(cfg.mtu_bytes, remaining)});
    }
  }
};

TEST_F(ChannelFixture, RequiresSink) {
  Channel naked(world.sim, cfg, "naked");
  auto t = make_transfer(*ep_a.qp, 100);
  EXPECT_THROW(naked.enqueue(detail::Packet{t, 0, 100}),
               std::logic_error);
}

TEST_F(ChannelFixture, SinglePacketSerializationTime) {
  enqueue_message(*ep_a.qp, 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  // 1024 bytes at 1 ns/byte + 200 ns propagation.
  EXPECT_EQ(delivered[0].first, 1024u + 200u);
}

TEST_F(ChannelFixture, PacketsOfOneFlowAreFifoAndPipelined) {
  enqueue_message(*ep_a.qp, 3 * 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0].first, 1224u);
  EXPECT_EQ(delivered[1].first, 2248u);  // back-to-back serialization
  EXPECT_EQ(delivered[2].first, 3272u);
}

TEST_F(ChannelFixture, ShortFinalPacket) {
  enqueue_message(*ep_a.qp, 1024 + 100);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[1].first, 1024u + 100u + 200u);
}

TEST_F(ChannelFixture, RoundRobinInterleavesTwoFlows) {
  enqueue_message(*ep_a.qp, 4 * 1024);
  enqueue_message(*ep_b.qp, 4 * 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 8u);
  // Packet-level fairness: no flow ever gets more than two consecutive
  // grants (flow A's first packet starts before flow B is enqueued, so the
  // very first pair may repeat), and the flows overlap rather than running
  // serially.
  std::size_t run = 1;
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    run = (delivered[i].second == delivered[i - 1].second) ? run + 1 : 1;
    EXPECT_LE(run, 2u) << "at " << i;
  }
  // B's first packet must land before A's last one (interleaving).
  sim::SimTime first_b = ~sim::SimTime{0}, last_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_b.qp->num()) first_b = std::min(first_b, t);
    if (qp == ep_a.qp->num()) last_a = std::max(last_a, t);
  }
  EXPECT_LT(first_b, last_a);
}

TEST_F(ChannelFixture, CompetingFlowDoublesCompletionTime) {
  // Baseline: 8 KiB alone finishes its last packet at 8*1024 + 200.
  enqueue_message(*ep_a.qp, 8 * 1024);
  enqueue_message(*ep_b.qp, 64 * 1024);  // much larger competing flow
  world.sim.run();
  sim::SimTime last_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_a.qp->num()) last_a = std::max(last_a, t);
  }
  // With packet-level RR the 8 KiB flow's last packet lands at ~2x its solo
  // time (each of its packets waits for one interferer packet; the first one
  // may slip through before the interferer is queued).
  EXPECT_GT(last_a, 13u * 1024u);
  EXPECT_LT(last_a, 17u * 1024u);
}

TEST_F(ChannelFixture, LateArrivingFlowStillGetsHalfTheLink) {
  enqueue_message(*ep_b.qp, 32 * 1024);
  // Let the big flow run a bit, then inject a small one.
  world.sim.run_until(4_us);
  enqueue_message(*ep_a.qp, 4 * 1024);
  world.sim.run();
  sim::SimTime last_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_a.qp->num()) last_a = std::max(last_a, t);
  }
  // 4 packets, each preceded by at most one interferer packet, starting
  // from ~4 us: bounded well below serial completion after the big flow.
  EXPECT_LT(last_a, 15_us);
  EXPECT_GT(last_a, 10_us);  // but it did contend
}

TEST_F(ChannelFixture, CountersTrackTraffic) {
  enqueue_message(*ep_a.qp, 2048);
  world.sim.run();
  EXPECT_EQ(chan.packets_sent(), 2u);
  EXPECT_EQ(chan.bytes_sent(), 2048u);
  EXPECT_EQ(chan.busy_time(), 2048u);
  EXPECT_EQ(chan.backlog_packets(), 0u);
  EXPECT_FALSE(chan.busy());
}

TEST_F(ChannelFixture, BacklogVisibleWhileQueued) {
  enqueue_message(*ep_a.qp, 4 * 1024);
  EXPECT_TRUE(chan.busy());
  EXPECT_EQ(chan.backlog_packets(), 3u);  // one on the wire
  world.sim.run();
  EXPECT_EQ(chan.backlog_packets(), 0u);
}

TEST_F(ChannelFixture, WrrWeightBiasesGrants) {
  // Flow A weight 3, flow B weight 1: A should get ~3x the grants while
  // both are backlogged.
  chan.set_flow_weight(ep_a.qp->num(), 3);
  enqueue_message(*ep_a.qp, 30 * 1024);
  enqueue_message(*ep_b.qp, 30 * 1024);
  world.sim.run_until(20_us);  // mid-contention snapshot
  std::size_t a = 0, b = 0;
  for (const auto& [t, qp] : delivered) {
    (qp == ep_a.qp->num() ? a : b) += 1;
  }
  ASSERT_GT(b, 0u);
  const double ratio = static_cast<double>(a) / static_cast<double>(b);
  EXPECT_NEAR(ratio, 3.0, 0.8);
}

TEST_F(ChannelFixture, FlowWeightDefaultsAndQuery) {
  EXPECT_EQ(chan.flow_weight(ep_a.qp->num()), 1u);
  chan.set_flow_weight(ep_a.qp->num(), 5);
  EXPECT_EQ(chan.flow_weight(ep_a.qp->num()), 5u);
  chan.set_flow_weight(ep_a.qp->num(), 0);  // clamped to 1
  EXPECT_EQ(chan.flow_weight(ep_a.qp->num()), 1u);
  EXPECT_DOUBLE_EQ(chan.flow_rate_limit(ep_a.qp->num()), 0.0);
}

TEST_F(ChannelFixture, RateLimitCapsThroughput) {
  // 100 MB/s = 0.1 bytes/ns. 64 KiB should take ~655 us instead of ~65 us.
  chan.set_flow_rate_limit(ep_a.qp->num(), 100e6);
  enqueue_message(*ep_a.qp, 64 * 1024);
  world.sim.run();
  sim::SimTime last = 0;
  for (const auto& [t, qp] : delivered) last = std::max(last, t);
  EXPECT_GT(last, 550_us);
  EXPECT_LT(last, 750_us);
}

TEST_F(ChannelFixture, RateLimitRejectsNegative) {
  EXPECT_THROW(chan.set_flow_rate_limit(ep_a.qp->num(), -1.0),
               std::invalid_argument);
}

TEST_F(ChannelFixture, RateLimitedFlowDoesNotBlockOthers) {
  chan.set_flow_rate_limit(ep_b.qp->num(), 50e6);
  enqueue_message(*ep_b.qp, 64 * 1024);  // slow bulk flow
  enqueue_message(*ep_a.qp, 8 * 1024);   // unlimited small flow
  world.sim.run();
  sim::SimTime last_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_a.qp->num()) last_a = std::max(last_a, t);
  }
  // A finishes almost as if alone (B only slips one packet in occasionally).
  EXPECT_LT(last_a, 15_us);
}

TEST_F(ChannelFixture, RateTimerWakesIdleChannel) {
  // Drain the bucket with a first packet, then enqueue another: the channel
  // must self-wake when tokens refill even with no other traffic.
  chan.set_flow_rate_limit(ep_a.qp->num(), 10e6);  // 0.01 B/ns
  enqueue_message(*ep_a.qp, 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  enqueue_message(*ep_a.qp, 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  // Second packet had to wait ~1024B / 0.01B/ns = ~102 us for tokens.
  EXPECT_GT(delivered[1].first, delivered[0].first + 90_us);
}

TEST_F(ChannelFixture, WrrIsWorkConservingUnderMixedMtuWithRateLimiters) {
  // Property: while an unthrottled flow stays backlogged the link never
  // idles, no matter how weights, rate limiters and packet sizes mix. With
  // test_config's 1 ns/byte wire, that pins every inter-delivery gap to the
  // next packet's serialization time and the makespan to total-bytes + one
  // propagation delay.
  testing::Endpoint ep_c = world.make_endpoint(world.node_a, *world.hca_a,
                                               "src3");
  std::vector<std::uint32_t> sizes;  // bytes of each delivered packet
  chan.set_sink([this, &sizes](detail::Packet p) {
    delivered.emplace_back(world.sim.now(), p.transfer->src_qp->num());
    sizes.push_back(p.bytes);
  });
  chan.set_flow_weight(ep_b.qp->num(), 2);
  chan.set_flow_rate_limit(ep_c.qp->num(), 200e6);  // 0.2 B/ns, 1/5 line rate

  std::uint64_t total_bytes = 0;
  std::size_t total_packets = 0;
  const auto offer = [&](testing::Endpoint& ep, std::uint32_t bytes) {
    enqueue_message(*ep.qp, bytes);
    total_bytes += bytes;
    total_packets += cfg.packets_for(bytes);
  };
  // A: the unthrottled backlog that outlasts everyone (multi-MTU messages
  // with a short tail packet). B: full-MTU and sub-MTU messages at weight 2.
  // C: sub-MTU messages through the token bucket.
  for (int i = 0; i < 20; ++i) offer(ep_a, 2 * 1024 + 512);
  for (int i = 0; i < 8; ++i) offer(ep_b, 1024);
  for (int i = 0; i < 4; ++i) offer(ep_b, 300);
  for (int i = 0; i < 6; ++i) offer(ep_c, 700);
  world.sim.run();

  ASSERT_EQ(delivered.size(), total_packets);  // nothing lost or duplicated
  EXPECT_EQ(chan.busy_time(), total_bytes);    // serialization conserved
  // A must be the straggler for the makespan property to bite.
  ASSERT_EQ(delivered.back().second, ep_a.qp->num());
  EXPECT_EQ(delivered.back().first, total_bytes + 200u);
  // No idle gap anywhere before A's last packet: each delivery follows the
  // previous by exactly its own serialization time.
  EXPECT_EQ(delivered.front().first, sizes.front() + 200u);
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i].first - delivered[i - 1].first, sizes[i])
        << "link idled before packet " << i;
  }
}

TEST_F(ChannelFixture, WrrDoesNotStarveAnyFlowUnderMixedMtu) {
  testing::Endpoint ep_c = world.make_endpoint(world.node_a, *world.hca_a,
                                               "src3");
  chan.set_flow_weight(ep_b.qp->num(), 2);
  chan.set_flow_rate_limit(ep_c.qp->num(), 200e6);
  enqueue_message(*ep_a.qp, 40 * 1024);
  for (int i = 0; i < 16; ++i) enqueue_message(*ep_b.qp, 700);
  for (int i = 0; i < 4; ++i) enqueue_message(*ep_c.qp, 1024);
  world.sim.run();

  // Every flow is served within the first WRR round (weights sum to 4).
  const auto first_grant = [&](QpNum qp) {
    for (std::size_t i = 0; i < delivered.size(); ++i) {
      if (delivered[i].second == qp) return i;
    }
    return delivered.size();
  };
  EXPECT_LT(first_grant(ep_a.qp->num()), 4u);
  EXPECT_LT(first_grant(ep_b.qp->num()), 4u);
  EXPECT_LT(first_grant(ep_c.qp->num()), 4u);
  // While both unthrottled flows are backlogged, A never waits longer than
  // the other flows' combined weight between its own grants (B's 2 plus at
  // most one C packet whenever its bucket has tokens).
  sim::SimTime last_b = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_b.qp->num()) last_b = std::max(last_b, t);
  }
  std::size_t run_without_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (t > last_b) break;  // contention over: B drained
    run_without_a = qp == ep_a.qp->num() ? 0 : run_without_a + 1;
    EXPECT_LE(run_without_a, 3u) << "flow A starved at t=" << t;
  }
}

// --- EcnMarker bound properties ---------------------------------------------

TEST(EcnMarkerProperty, NeverMarksBelowKminAlwaysMarksAtOrAboveKmax) {
  EcnMarker marker(4, 12);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t occ = (i * 7919) % 20;  // deterministic sweep 0..19
    const bool marked = marker.on_enqueue(occ);
    if (occ < 4) {
      EXPECT_FALSE(marked) << "occ=" << occ;
    }
    if (occ >= 12) {
      EXPECT_TRUE(marked) << "occ=" << occ;
    }
  }
}

TEST(EcnMarkerProperty, DisabledMarkerNeverMarks) {
  EcnMarker marker(0, 0);
  for (std::uint64_t occ = 0; occ < 100; ++occ) {
    EXPECT_FALSE(marker.on_enqueue(occ));
  }
}

TEST(EcnMarkerProperty, RampIsLinearAndDeterministic) {
  // Between the thresholds the accumulator realizes the RED ramp exactly:
  // at constant occupancy q the long-run mark count is n*(q-kmin+1)/(kmax-
  // kmin+1) to within one carry.
  constexpr std::uint32_t kMin = 4, kMax = 12;
  constexpr int kN = 9000;
  for (std::uint64_t occ = kMin; occ < kMax; ++occ) {
    EcnMarker marker(kMin, kMax);
    int marks = 0;
    for (int i = 0; i < kN; ++i) marks += marker.on_enqueue(occ) ? 1 : 0;
    const double expected = kN *
                            (static_cast<double>(occ) - kMin + 1.0) /
                            (kMax - kMin + 1.0);
    EXPECT_NEAR(static_cast<double>(marks), expected, 1.0) << "occ=" << occ;
  }
  // And identical sequences mark identically (pure function of history).
  EcnMarker x(kMin, kMax), y(kMin, kMax);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t occ = (i * 31) % 16;
    EXPECT_EQ(x.on_enqueue(occ), y.on_enqueue(occ)) << "i=" << i;
  }
}

TEST_F(ChannelFixture, ZeroLengthMessageStillCostsAPacket) {
  auto t = make_transfer(*ep_a.qp, 0);
  t->wire_length = 1;
  t->total_packets = 1;
  chan.enqueue(detail::Packet{t, 0, 1});
  world.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, 1u + 200u);
}

}  // namespace
}  // namespace resex::fabric
