#include "fabric/channel.hpp"

#include <gtest/gtest.h>

#include "fabric_fixture.hpp"

namespace resex::fabric {
namespace {

using namespace resex::sim::literals;
using testing::TwoNodeWorld;

struct ChannelFixture : ::testing::Test {
  TwoNodeWorld world;
  FabricConfig cfg = testing::test_config();
  Channel chan{world.sim, cfg, "test"};
  std::vector<std::pair<sim::SimTime, QpNum>> delivered;
  testing::Endpoint ep_a = world.make_endpoint(world.node_a, *world.hca_a,
                                               "src1");
  testing::Endpoint ep_b = world.make_endpoint(world.node_a, *world.hca_a,
                                               "src2");

  void SetUp() override {
    chan.set_sink([this](detail::Packet p) {
      delivered.emplace_back(world.sim.now(), p.transfer->src_qp->num());
    });
  }

  std::shared_ptr<detail::Transfer> make_transfer(QueuePair& qp,
                                                  std::uint32_t bytes) {
    auto t = std::make_shared<detail::Transfer>();
    t->wr.length = bytes;
    t->src_qp = &qp;
    t->dst_qp = ep_b.qp;
    t->wire_length = bytes;
    t->total_packets = cfg.packets_for(bytes);
    return t;
  }

  void enqueue_message(QueuePair& qp, std::uint32_t bytes) {
    auto t = make_transfer(qp, bytes);
    for (std::uint32_t i = 0; i < t->total_packets; ++i) {
      const std::uint32_t remaining = bytes - i * cfg.mtu_bytes;
      chan.enqueue(detail::Packet{
          t, i, std::min(cfg.mtu_bytes, remaining)});
    }
  }
};

TEST_F(ChannelFixture, RequiresSink) {
  Channel naked(world.sim, cfg, "naked");
  auto t = make_transfer(*ep_a.qp, 100);
  EXPECT_THROW(naked.enqueue(detail::Packet{t, 0, 100}),
               std::logic_error);
}

TEST_F(ChannelFixture, SinglePacketSerializationTime) {
  enqueue_message(*ep_a.qp, 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  // 1024 bytes at 1 ns/byte + 200 ns propagation.
  EXPECT_EQ(delivered[0].first, 1024u + 200u);
}

TEST_F(ChannelFixture, PacketsOfOneFlowAreFifoAndPipelined) {
  enqueue_message(*ep_a.qp, 3 * 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0].first, 1224u);
  EXPECT_EQ(delivered[1].first, 2248u);  // back-to-back serialization
  EXPECT_EQ(delivered[2].first, 3272u);
}

TEST_F(ChannelFixture, ShortFinalPacket) {
  enqueue_message(*ep_a.qp, 1024 + 100);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[1].first, 1024u + 100u + 200u);
}

TEST_F(ChannelFixture, RoundRobinInterleavesTwoFlows) {
  enqueue_message(*ep_a.qp, 4 * 1024);
  enqueue_message(*ep_b.qp, 4 * 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 8u);
  // Packet-level fairness: no flow ever gets more than two consecutive
  // grants (flow A's first packet starts before flow B is enqueued, so the
  // very first pair may repeat), and the flows overlap rather than running
  // serially.
  std::size_t run = 1;
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    run = (delivered[i].second == delivered[i - 1].second) ? run + 1 : 1;
    EXPECT_LE(run, 2u) << "at " << i;
  }
  // B's first packet must land before A's last one (interleaving).
  sim::SimTime first_b = ~sim::SimTime{0}, last_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_b.qp->num()) first_b = std::min(first_b, t);
    if (qp == ep_a.qp->num()) last_a = std::max(last_a, t);
  }
  EXPECT_LT(first_b, last_a);
}

TEST_F(ChannelFixture, CompetingFlowDoublesCompletionTime) {
  // Baseline: 8 KiB alone finishes its last packet at 8*1024 + 200.
  enqueue_message(*ep_a.qp, 8 * 1024);
  enqueue_message(*ep_b.qp, 64 * 1024);  // much larger competing flow
  world.sim.run();
  sim::SimTime last_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_a.qp->num()) last_a = std::max(last_a, t);
  }
  // With packet-level RR the 8 KiB flow's last packet lands at ~2x its solo
  // time (each of its packets waits for one interferer packet; the first one
  // may slip through before the interferer is queued).
  EXPECT_GT(last_a, 13u * 1024u);
  EXPECT_LT(last_a, 17u * 1024u);
}

TEST_F(ChannelFixture, LateArrivingFlowStillGetsHalfTheLink) {
  enqueue_message(*ep_b.qp, 32 * 1024);
  // Let the big flow run a bit, then inject a small one.
  world.sim.run_until(4_us);
  enqueue_message(*ep_a.qp, 4 * 1024);
  world.sim.run();
  sim::SimTime last_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_a.qp->num()) last_a = std::max(last_a, t);
  }
  // 4 packets, each preceded by at most one interferer packet, starting
  // from ~4 us: bounded well below serial completion after the big flow.
  EXPECT_LT(last_a, 15_us);
  EXPECT_GT(last_a, 10_us);  // but it did contend
}

TEST_F(ChannelFixture, CountersTrackTraffic) {
  enqueue_message(*ep_a.qp, 2048);
  world.sim.run();
  EXPECT_EQ(chan.packets_sent(), 2u);
  EXPECT_EQ(chan.bytes_sent(), 2048u);
  EXPECT_EQ(chan.busy_time(), 2048u);
  EXPECT_EQ(chan.backlog_packets(), 0u);
  EXPECT_FALSE(chan.busy());
}

TEST_F(ChannelFixture, BacklogVisibleWhileQueued) {
  enqueue_message(*ep_a.qp, 4 * 1024);
  EXPECT_TRUE(chan.busy());
  EXPECT_EQ(chan.backlog_packets(), 3u);  // one on the wire
  world.sim.run();
  EXPECT_EQ(chan.backlog_packets(), 0u);
}

TEST_F(ChannelFixture, WrrWeightBiasesGrants) {
  // Flow A weight 3, flow B weight 1: A should get ~3x the grants while
  // both are backlogged.
  chan.set_flow_weight(ep_a.qp->num(), 3);
  enqueue_message(*ep_a.qp, 30 * 1024);
  enqueue_message(*ep_b.qp, 30 * 1024);
  world.sim.run_until(20_us);  // mid-contention snapshot
  std::size_t a = 0, b = 0;
  for (const auto& [t, qp] : delivered) {
    (qp == ep_a.qp->num() ? a : b) += 1;
  }
  ASSERT_GT(b, 0u);
  const double ratio = static_cast<double>(a) / static_cast<double>(b);
  EXPECT_NEAR(ratio, 3.0, 0.8);
}

TEST_F(ChannelFixture, FlowWeightDefaultsAndQuery) {
  EXPECT_EQ(chan.flow_weight(ep_a.qp->num()), 1u);
  chan.set_flow_weight(ep_a.qp->num(), 5);
  EXPECT_EQ(chan.flow_weight(ep_a.qp->num()), 5u);
  chan.set_flow_weight(ep_a.qp->num(), 0);  // clamped to 1
  EXPECT_EQ(chan.flow_weight(ep_a.qp->num()), 1u);
  EXPECT_DOUBLE_EQ(chan.flow_rate_limit(ep_a.qp->num()), 0.0);
}

TEST_F(ChannelFixture, RateLimitCapsThroughput) {
  // 100 MB/s = 0.1 bytes/ns. 64 KiB should take ~655 us instead of ~65 us.
  chan.set_flow_rate_limit(ep_a.qp->num(), 100e6);
  enqueue_message(*ep_a.qp, 64 * 1024);
  world.sim.run();
  sim::SimTime last = 0;
  for (const auto& [t, qp] : delivered) last = std::max(last, t);
  EXPECT_GT(last, 550_us);
  EXPECT_LT(last, 750_us);
}

TEST_F(ChannelFixture, RateLimitRejectsNegative) {
  EXPECT_THROW(chan.set_flow_rate_limit(ep_a.qp->num(), -1.0),
               std::invalid_argument);
}

TEST_F(ChannelFixture, RateLimitedFlowDoesNotBlockOthers) {
  chan.set_flow_rate_limit(ep_b.qp->num(), 50e6);
  enqueue_message(*ep_b.qp, 64 * 1024);  // slow bulk flow
  enqueue_message(*ep_a.qp, 8 * 1024);   // unlimited small flow
  world.sim.run();
  sim::SimTime last_a = 0;
  for (const auto& [t, qp] : delivered) {
    if (qp == ep_a.qp->num()) last_a = std::max(last_a, t);
  }
  // A finishes almost as if alone (B only slips one packet in occasionally).
  EXPECT_LT(last_a, 15_us);
}

TEST_F(ChannelFixture, RateTimerWakesIdleChannel) {
  // Drain the bucket with a first packet, then enqueue another: the channel
  // must self-wake when tokens refill even with no other traffic.
  chan.set_flow_rate_limit(ep_a.qp->num(), 10e6);  // 0.01 B/ns
  enqueue_message(*ep_a.qp, 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  enqueue_message(*ep_a.qp, 1024);
  world.sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  // Second packet had to wait ~1024B / 0.01B/ns = ~102 us for tokens.
  EXPECT_GT(delivered[1].first, delivered[0].first + 90_us);
}

TEST_F(ChannelFixture, ZeroLengthMessageStillCostsAPacket) {
  auto t = make_transfer(*ep_a.qp, 0);
  t->wire_length = 1;
  t->total_packets = 1;
  chan.enqueue(detail::Packet{t, 0, 1});
  world.sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, 1u + 200u);
}

}  // namespace
}  // namespace resex::fabric
