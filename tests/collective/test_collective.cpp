// resex::collective suite: exact elementwise-sum property for ring
// all-reduce under random sizes/chunkings, recursive-doubling all-gather and
// binomial broadcast correctness, the 2*S*(N-1)/N wire-byte closed form,
// byte-identical step ordering across --jobs counts, the stalled-ring
// regression (a mid-collective link flap must terminate through the RC retry
// budget with flushed QPs, not wedge the step barrier), CollectiveService
// rounds + migration over a cluster, and the broker's io price tracking
// collective phases.

#include "collective/collective.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "cluster/broker.hpp"
#include "cluster/migration.hpp"
#include "cluster/topology.hpp"
#include "collective/service.hpp"
#include "core/cluster_exchange.hpp"
#include "fault/fault.hpp"
#include "runner/runner.hpp"

namespace resex::collective {
namespace {

/// A star cluster with one rank per node and the 1 ns/byte test link speed.
struct World {
  explicit World(std::uint32_t ranks, std::uint32_t pcpus = 2)
      : cluster(make_config(ranks, pcpus)) {}

  static cluster::ClusterConfig make_config(std::uint32_t ranks,
                                            std::uint32_t pcpus) {
    cluster::ClusterConfig cfg;
    cfg.nodes = ranks;
    cfg.pcpus_per_node = pcpus;
    cfg.topology = cluster::TopologyKind::kStar;
    cfg.fabric.link_bytes_per_sec = 1e9;
    return cfg;
  }

  std::vector<RankHome> homes() {
    std::vector<RankHome> out(cluster.node_count());
    for (std::uint32_t i = 0; i < cluster.node_count(); ++i) {
      out[i] = RankHome{&cluster.node(i), &cluster.hca(i)};
    }
    return out;
  }

  cluster::Cluster cluster;
};

// --- ring all-reduce: exact elementwise sum ----------------------------------

TEST(CollectiveRing, ExactElementwiseSumAcrossSizesAndChunkings) {
  struct Case {
    std::uint32_t ranks;
    std::uint64_t elems;
    std::uint32_t chunk_bytes;
  };
  // Uneven segments (3 and 5 ranks), chunk == element, chunk straddling
  // segment boundaries — the reduction must stay exact everywhere.
  const Case cases[] = {
      {2, 16, 8},   {3, 33, 16},    {4, 256, 64},
      {5, 1000, 256}, {8, 64, 8},
  };
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> val(0, 1000);
  for (const Case& c : cases) {
    World w(c.ranks);
    CollectiveConfig cfg;
    cfg.ranks = c.ranks;
    cfg.payload_bytes = c.elems * sizeof(double);
    cfg.chunk_bytes = c.chunk_bytes;
    cfg.algorithm = Algorithm::kRingAllReduce;
    CollectiveGroup group(w.cluster.sim(), w.homes(), cfg);

    std::vector<double> expected(c.elems, 0.0);
    for (std::uint32_t r = 0; r < c.ranks; ++r) {
      auto& data = group.rank_data(r);
      for (std::uint64_t i = 0; i < c.elems; ++i) {
        data[i] = static_cast<double>(val(rng));  // integer-valued: sums exact
        expected[i] += data[i];
      }
    }
    group.start();
    w.cluster.sim().run();

    ASSERT_TRUE(group.done());
    ASSERT_TRUE(group.result().ok)
        << "ranks=" << c.ranks << " failure rank "
        << group.result().failed_rank;
    EXPECT_GT(group.result().finished_at, group.result().started_at);
    for (std::uint32_t r = 0; r < c.ranks; ++r) {
      const auto& data = group.rank_data(r);
      for (std::uint64_t i = 0; i < c.elems; ++i) {
        ASSERT_EQ(data[i], expected[i])
            << "ranks=" << c.ranks << " chunk=" << c.chunk_bytes << " rank "
            << r << " elem " << i;
      }
      // Every rank walked the same 2(N-1) steps in order.
      ASSERT_EQ(group.step_log(r).size(), 2u * (c.ranks - 1));
      for (std::uint32_t s = 0; s < group.step_log(r).size(); ++s) {
        EXPECT_EQ(group.step_log(r)[s], s);
      }
    }
  }
}

TEST(CollectiveRing, WireBytesMatchClosedForm) {
  // N | elems so segments are equal and the closed form 2*S*(N-1)/N is exact.
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kPayload = 256 * sizeof(double);
  World w(kRanks);
  CollectiveConfig cfg;
  cfg.ranks = kRanks;
  cfg.payload_bytes = kPayload;
  cfg.chunk_bytes = 512;
  CollectiveGroup group(w.cluster.sim(), w.homes(), cfg);
  group.start();
  w.cluster.sim().run();

  ASSERT_TRUE(group.result().ok);
  const std::uint64_t closed = 2 * kPayload * (kRanks - 1) / kRanks;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    EXPECT_EQ(group.rank_wire_bytes(r), closed) << "rank " << r;
  }
  EXPECT_EQ(w.cluster.sim().metrics().counter("coll_bytes").value(),
            closed * kRanks);
}

TEST(CollectiveRing, MultipleIterationsKeepReducing) {
  World w(3);
  CollectiveConfig cfg;
  cfg.ranks = 3;
  cfg.payload_bytes = 30 * sizeof(double);
  cfg.chunk_bytes = 64;
  cfg.iterations = 3;
  CollectiveGroup group(w.cluster.sim(), w.homes(), cfg);
  group.start();
  w.cluster.sim().run();

  ASSERT_TRUE(group.result().ok);
  // Iteration k multiplies the all-reduced vector by N again: after 3
  // iterations of summing (1+2+3) the value is 6 * 3 * 3 = 54.
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (const double v : group.rank_data(r)) ASSERT_EQ(v, 54.0);
    EXPECT_EQ(group.step_log(r).size(), 3u * 4u);
  }
}

// --- all-gather and broadcast ------------------------------------------------

TEST(CollectiveAllGather, ConcatenatesEveryBlock) {
  constexpr std::uint32_t kRanks = 8;
  constexpr std::uint64_t kBlockElems = 24;
  World w(kRanks);
  CollectiveConfig cfg;
  cfg.ranks = kRanks;
  cfg.payload_bytes = kBlockElems * sizeof(double);
  cfg.chunk_bytes = 40;  // 5 elems: chunks straddle block boundaries
  cfg.algorithm = Algorithm::kAllGather;
  CollectiveGroup group(w.cluster.sim(), w.homes(), cfg);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    auto& data = group.rank_data(r);
    for (std::uint64_t i = 0; i < kBlockElems; ++i) {
      data[r * kBlockElems + i] = static_cast<double>(100 * (r + 1) + i);
    }
  }
  group.start();
  w.cluster.sim().run();

  ASSERT_TRUE(group.result().ok);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    const auto& data = group.rank_data(r);
    ASSERT_EQ(data.size(), kRanks * kBlockElems);
    for (std::uint32_t j = 0; j < kRanks; ++j) {
      for (std::uint64_t i = 0; i < kBlockElems; ++i) {
        ASSERT_EQ(data[j * kBlockElems + i],
                  static_cast<double>(100 * (j + 1) + i))
            << "rank " << r << " block " << j << " elem " << i;
      }
    }
  }
}

TEST(CollectiveAllGather, RejectsNonPowerOfTwoRankCounts) {
  World w(3);
  CollectiveConfig cfg;
  cfg.ranks = 3;
  cfg.algorithm = Algorithm::kAllGather;
  EXPECT_THROW((CollectiveGroup{w.cluster.sim(), w.homes(), cfg}),
               std::invalid_argument);
}

TEST(CollectiveBroadcast, DeliversRootVectorToEveryRank) {
  constexpr std::uint32_t kRanks = 5;  // non-power-of-two tree
  constexpr std::uint64_t kElems = 100;
  World w(kRanks);
  CollectiveConfig cfg;
  cfg.ranks = kRanks;
  cfg.payload_bytes = kElems * sizeof(double);
  cfg.chunk_bytes = 128;
  cfg.algorithm = Algorithm::kBroadcast;
  cfg.root = 2;
  CollectiveGroup group(w.cluster.sim(), w.homes(), cfg);
  auto& root_data = group.rank_data(2);
  for (std::uint64_t i = 0; i < kElems; ++i) {
    root_data[i] = static_cast<double>(7 * i + 3);
  }
  group.start();
  w.cluster.sim().run();

  ASSERT_TRUE(group.result().ok);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    const auto& data = group.rank_data(r);
    for (std::uint64_t i = 0; i < kElems; ++i) {
      ASSERT_EQ(data[i], static_cast<double>(7 * i + 3))
          << "rank " << r << " elem " << i;
    }
  }
}

// --- determinism across --jobs -----------------------------------------------

/// One full trial: cluster + ring all-reduce, returning finish time, a data
/// checksum and a step-order fingerprint — anything that could diverge.
std::vector<double> ring_trial(std::uint64_t seed) {
  World w(4);
  CollectiveConfig cfg;
  cfg.ranks = 4;
  cfg.payload_bytes = (64 + (seed % 4) * 32) * sizeof(double);
  cfg.chunk_bytes = 128;
  cfg.iterations = 2;
  CollectiveGroup group(w.cluster.sim(), w.homes(), cfg);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> val(0, 1 << 20);
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (auto& v : group.rank_data(r)) v = static_cast<double>(val(rng));
  }
  group.start();
  w.cluster.sim().run();
  double checksum = 0.0;
  for (const double v : group.rank_data(0)) checksum += v;
  double order = 0.0;
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (const std::uint32_t g : group.step_log(r)) {
      order = order * 31.0 + g + r;
    }
  }
  return {static_cast<double>(group.result().finished_at), checksum, order,
          group.result().ok ? 1.0 : 0.0};
}

TEST(CollectiveDeterminism, StepOrderingAndResultsIdenticalAcrossJobs) {
  std::vector<runner::GenericPoint> points;
  for (std::uint64_t p = 0; p < 3; ++p) {
    runner::GenericPoint pt;
    pt.label = "ring-p" + std::to_string(p);
    pt.seed = 100 + p;
    pt.run = ring_trial;
    points.push_back(std::move(pt));
  }
  runner::RunnerOptions serial;
  serial.jobs = 1;
  serial.seeds = 2;
  runner::RunnerOptions wide;
  wide.jobs = 4;
  wide.seeds = 2;
  const auto a = runner::run_generic(points, serial);
  const auto b = runner::run_generic(points, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].trial_values, b[i].trial_values) << "point " << i;
    for (const auto& trial : a[i].trial_values) {
      EXPECT_EQ(trial.back(), 1.0) << "trial failed";
    }
  }
}

// --- faults mid-collective (the step-barrier liveness regression) ------------

TEST(CollectiveFaults, StalledRingTerminatesThroughRetryBudgetWithFlushedQps) {
  World w(4);
  // n1's uplink goes down just as traffic starts and stays down past the
  // whole RC retry budget (7 doubling RTOs from 1 ms ~ 255 ms), so rank 1's
  // sends must exhaust their budget and error the QP — and every other rank,
  // blocked on its step barrier, must drain through flush/remote-op errors
  // instead of wedging forever.
  fault::FaultInjector injector(fault::FaultPlan::parse("flap=0:400:n1/up"),
                                /*seed=*/7);
  injector.arm(w.cluster.fabric(), &w.cluster.node(0));

  CollectiveConfig cfg;
  cfg.ranks = 4;
  cfg.payload_bytes = 1 << 20;
  cfg.chunk_bytes = 64 * 1024;
  CollectiveGroup group(w.cluster.sim(), w.homes(), cfg);
  group.start();
  w.cluster.sim().run();  // the regression: this must terminate at all

  ASSERT_TRUE(group.done());
  const CollectiveResult& res = group.result();
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failed_rank, CollectiveResult::kNoRank);
  EXPECT_NE(res.failure, fabric::CqeStatus::kSuccess);
  // The group died through the reliable transport, not a hang: retries were
  // burned, and the teardown flushed posted receives with error CQEs.
  auto& metrics = w.cluster.sim().metrics();
  EXPECT_GT(metrics.counter("fabric.retransmits").value(), 0u);
  EXPECT_GT(metrics.counter("fabric.wr_flushes").value(), 0u);
}

// --- CollectiveService over the cluster --------------------------------------

TEST(CollectiveService, RunsRoundsAndAppliesQueuedMigration) {
  World w(4, /*pcpus=*/4);
  ServiceConfig scfg;
  scfg.collective.ranks = 4;
  scfg.collective.payload_bytes = 64 * sizeof(double);
  scfg.collective.chunk_bytes = 256;
  scfg.rounds = 3;
  scfg.inter_round_gap = sim::kMillisecond;
  CollectiveService svc(w.cluster, scfg, {0, 1, 2, 3});
  svc.start();
  // Queue a move of rank 1 onto node 3 once round 0 is underway; it must
  // only take effect at the next round boundary.
  w.cluster.sim().schedule_in(10 * sim::kMicrosecond,
                              [&svc] { svc.migrate_rank(1, 3); });
  w.cluster.sim().run();

  ASSERT_TRUE(svc.done());
  EXPECT_EQ(svc.rounds_completed(), 3u);
  EXPECT_EQ(svc.migrations(), 1u);
  EXPECT_TRUE(svc.last_result().ok);
  const std::vector<std::uint32_t> want{0, 3, 2, 3};
  EXPECT_EQ(svc.placement(), want);
  // Per-round domains were retired: no PCPU leak across 3 rounds.
  EXPECT_GE(w.cluster.node(1).free_pcpu_count(), 2u);
}

TEST(CollectiveService, BrokerIoPriceTracksCollectivePhases) {
  World w(4, /*pcpus=*/4);
  auto& sim = w.cluster.sim();
  core::ClusterExchange exchange;
  cluster::MigrationEngine engine(w.cluster);
  cluster::BrokerConfig bcfg;
  bcfg.period = 5 * sim::kMillisecond;
  cluster::ClusterBroker broker(w.cluster, exchange, engine, bcfg);
  broker.start();

  // ~12 MiB on each wire at 1 GB/s: the collective spans several broker
  // quote periods, then the fabric goes idle.
  ServiceConfig scfg;
  scfg.collective.ranks = 4;
  scfg.collective.payload_bytes = 8 << 20;
  scfg.collective.chunk_bytes = 256 * 1024;
  scfg.collective.iterations = 2;
  CollectiveService svc(w.cluster, scfg, {0, 1, 2, 3});
  svc.start();

  double busy_price = -1.0;
  sim.schedule_in(16 * sim::kMillisecond, [&] {
    ASSERT_NE(exchange.quote(0), nullptr);
    busy_price = exchange.quote(0)->io_price;
  });
  double idle_price = -1.0;
  sim.schedule_in(70 * sim::kMillisecond, [&] {
    idle_price = exchange.quote(0)->io_price;
  });
  sim.run_until(80 * sim::kMillisecond);

  ASSERT_TRUE(svc.done());
  ASSERT_TRUE(svc.last_result().ok);
  // Mid-collective the host port is near-saturated; after it ends the
  // quoted io price collapses back towards zero.
  EXPECT_GT(busy_price, 0.5);
  EXPECT_GE(idle_price, 0.0);
  EXPECT_LT(idle_price, 0.1);
}

}  // namespace
}  // namespace resex::collective
