#include <gtest/gtest.h>

#include "finance/binomial.hpp"
#include "finance/monte_carlo.hpp"
#include "finance/workload.hpp"

namespace resex::finance {
namespace {

OptionSpec atm() {
  return OptionSpec{.spot = 100.0, .strike = 100.0, .rate = 0.05,
                    .vol = 0.2, .expiry = 1.0, .type = OptionType::kCall};
}

TEST(Binomial, ConvergesToBlackScholesForEuropean) {
  const OptionSpec o = atm();
  const double bs = price(o);
  EXPECT_NEAR(binomial_price(o, 64, ExerciseStyle::kEuropean), bs, 0.1);
  EXPECT_NEAR(binomial_price(o, 512, ExerciseStyle::kEuropean), bs, 0.02);
  EXPECT_NEAR(binomial_price(o, 2048, ExerciseStyle::kEuropean), bs, 0.005);
}

TEST(Binomial, AmericanCallOnNonDividendStockEqualsEuropean) {
  const OptionSpec o = atm();
  EXPECT_NEAR(binomial_price(o, 256, ExerciseStyle::kAmerican),
              binomial_price(o, 256, ExerciseStyle::kEuropean), 1e-10);
}

TEST(Binomial, AmericanPutCarriesEarlyExercisePremium) {
  OptionSpec o = atm();
  o.type = OptionType::kPut;
  o.strike = 120.0;  // deep ITM put: early exercise is valuable
  const double amer = binomial_price(o, 256, ExerciseStyle::kAmerican);
  const double euro = binomial_price(o, 256, ExerciseStyle::kEuropean);
  EXPECT_GT(amer, euro + 0.05);
  // American option is worth at least intrinsic.
  EXPECT_GE(amer, o.strike - o.spot);
}

TEST(Binomial, RejectsBadInputs) {
  EXPECT_THROW((void)binomial_price(atm(), 0, ExerciseStyle::kEuropean),
               BadOption);
  OptionSpec o = atm();
  o.spot = -1.0;
  EXPECT_THROW((void)binomial_price(o, 16, ExerciseStyle::kEuropean),
               BadOption);
}

TEST(MonteCarlo, ConvergesToAnalyticPrice) {
  const OptionSpec o = atm();
  sim::Rng rng(42);
  const auto r = monte_carlo_price(o, 200000, rng);
  EXPECT_NEAR(r.price, price(o), 4.0 * r.std_error + 0.01);
  EXPECT_LT(r.std_error, 0.05);
  EXPECT_EQ(r.paths, 200000u);
}

TEST(MonteCarlo, PutPricing) {
  OptionSpec o = atm();
  o.type = OptionType::kPut;
  sim::Rng rng(7);
  const auto r = monte_carlo_price(o, 200000, rng);
  EXPECT_NEAR(r.price, price(o), 4.0 * r.std_error + 0.01);
}

TEST(MonteCarlo, DeterministicForSameSeed) {
  sim::Rng a(3), b(3);
  const auto ra = monte_carlo_price(atm(), 1000, a);
  const auto rb = monte_carlo_price(atm(), 1000, b);
  EXPECT_DOUBLE_EQ(ra.price, rb.price);
}

TEST(MonteCarlo, RejectsZeroPaths) {
  sim::Rng rng(1);
  EXPECT_THROW((void)monte_carlo_price(atm(), 0, rng), BadOption);
}

TEST(CostModel, ScalesWithKindAndCount) {
  const CostModel m;
  EXPECT_LT(m.cost(RequestKind::kQuote, 10),
            m.cost(RequestKind::kTrade, 10));
  EXPECT_LT(m.cost(RequestKind::kTrade, 10),
            m.cost(RequestKind::kRiskReport, 10));
  EXPECT_EQ(m.cost(RequestKind::kQuote, 0), m.base);
  EXPECT_EQ(m.cost(RequestKind::kQuote, 5), m.base + 5 * m.per_quote);
}

TEST(RequestProcessor, DeterministicChecksums) {
  RequestProcessor a(99), b(99);
  const auto ra = a.process(RequestKind::kQuote, 20);
  const auto rb = b.process(RequestKind::kQuote, 20);
  EXPECT_DOUBLE_EQ(ra.checksum, rb.checksum);
  EXPECT_EQ(ra.options_priced, 20u);
}

TEST(RequestProcessor, DifferentSeedsDiffer) {
  RequestProcessor a(1), b(2);
  EXPECT_NE(a.process(RequestKind::kQuote, 20).checksum,
            b.process(RequestKind::kQuote, 20).checksum);
}

TEST(RequestProcessor, TradeRoundTripsImpliedVol) {
  RequestProcessor p(5);
  const auto r = p.process(RequestKind::kTrade, 8);
  // Implied vols are in the generator's range (0.1, 0.6): checksum bounded.
  EXPECT_GT(r.checksum, 8 * 0.1 - 1e-9);
  EXPECT_LT(r.checksum, 8 * 0.6 + 1e-9);
}

TEST(RequestProcessor, CostComesFromModel) {
  const CostModel m;
  RequestProcessor p(1, m);
  EXPECT_EQ(p.process(RequestKind::kRiskReport, 3).cpu_cost,
            m.cost(RequestKind::kRiskReport, 3));
}

TEST(RequestKindNames, AllCovered) {
  EXPECT_STREQ(to_string(RequestKind::kQuote), "quote");
  EXPECT_STREQ(to_string(RequestKind::kTrade), "trade");
  EXPECT_STREQ(to_string(RequestKind::kRiskReport), "risk-report");
}

}  // namespace
}  // namespace resex::finance
