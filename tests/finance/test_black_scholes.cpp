#include "finance/black_scholes.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace resex::finance {
namespace {

OptionSpec atm() {
  return OptionSpec{.spot = 100.0, .strike = 100.0, .rate = 0.05,
                    .vol = 0.2, .expiry = 1.0, .type = OptionType::kCall};
}

TEST(NormFunctions, CdfKnownValues) {
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(norm_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(norm_cdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(norm_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormFunctions, PdfSymmetricAndNormalized) {
  EXPECT_NEAR(norm_pdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_DOUBLE_EQ(norm_pdf(1.3), norm_pdf(-1.3));
}

TEST(BlackScholes, KnownCallPrice) {
  // Classic textbook value: S=100, K=100, r=5%, sigma=20%, T=1.
  EXPECT_NEAR(price(atm()), 10.450583572185565, 1e-9);
}

TEST(BlackScholes, KnownPutPrice) {
  OptionSpec o = atm();
  o.type = OptionType::kPut;
  EXPECT_NEAR(price(o), 5.573526022256971, 1e-9);
}

TEST(BlackScholes, PutCallParity) {
  for (double k : {80.0, 100.0, 123.0}) {
    OptionSpec c = atm();
    c.strike = k;
    OptionSpec p = c;
    p.type = OptionType::kPut;
    const double lhs = price(c) - price(p);
    const double rhs = c.spot - k * std::exp(-c.rate * c.expiry);
    EXPECT_NEAR(lhs, rhs, 1e-10) << "K=" << k;
  }
}

TEST(BlackScholes, DeepInTheMoneyCallApproachesForward) {
  OptionSpec o = atm();
  o.strike = 1.0;
  EXPECT_NEAR(price(o), o.spot - o.strike * std::exp(-o.rate * o.expiry),
              1e-9);
}

TEST(BlackScholes, PriceIncreasesWithVol) {
  OptionSpec lo = atm(), hi = atm();
  lo.vol = 0.1;
  hi.vol = 0.5;
  EXPECT_LT(price(lo), price(hi));
}

TEST(BlackScholes, ValidationRejectsBadInputs) {
  OptionSpec o = atm();
  o.spot = 0.0;
  EXPECT_THROW((void)price(o), BadOption);
  o = atm();
  o.vol = -0.1;
  EXPECT_THROW((void)price(o), BadOption);
  o = atm();
  o.expiry = 0.0;
  EXPECT_THROW((void)price(o), BadOption);
  o = atm();
  o.strike = -5.0;
  EXPECT_THROW((void)greeks(o), BadOption);
}

TEST(Greeks, CallDeltaKnownValue) {
  EXPECT_NEAR(greeks(atm()).delta, 0.6368306511756191, 1e-10);
}

TEST(Greeks, PutCallDeltaRelation) {
  OptionSpec c = atm();
  OptionSpec p = atm();
  p.type = OptionType::kPut;
  EXPECT_NEAR(greeks(c).delta - greeks(p).delta, 1.0, 1e-12);
}

TEST(Greeks, GammaAndVegaMatchFiniteDifference) {
  const OptionSpec o = atm();
  const double h = 1e-4;
  OptionSpec up = o, dn = o;
  up.spot += h;
  dn.spot -= h;
  const double fd_delta = (price(up) - price(dn)) / (2 * h);
  const double fd_gamma =
      (price(up) - 2 * price(o) + price(dn)) / (h * h);
  EXPECT_NEAR(greeks(o).delta, fd_delta, 1e-6);
  EXPECT_NEAR(greeks(o).gamma, fd_gamma, 1e-4);

  OptionSpec vu = o, vd = o;
  vu.vol += h;
  vd.vol -= h;
  EXPECT_NEAR(greeks(o).vega, (price(vu) - price(vd)) / (2 * h), 1e-5);
}

TEST(Greeks, ThetaAndRhoMatchFiniteDifference) {
  const OptionSpec o = atm();
  const double h = 1e-5;
  OptionSpec tu = o, td = o;
  tu.expiry += h;
  td.expiry -= h;
  // theta = -dV/dT (calendar decay).
  EXPECT_NEAR(greeks(o).theta, -(price(tu) - price(td)) / (2 * h), 1e-4);
  OptionSpec ru = o, rd = o;
  ru.rate += h;
  rd.rate -= h;
  EXPECT_NEAR(greeks(o).rho, (price(ru) - price(rd)) / (2 * h), 1e-4);
}

TEST(ImpliedVol, RecoversInputVol) {
  for (double sigma : {0.05, 0.2, 0.45, 0.9}) {
    OptionSpec o = atm();
    o.vol = sigma;
    const double p = price(o);
    EXPECT_NEAR(implied_vol(o, p), sigma, 1e-7) << "sigma=" << sigma;
  }
}

TEST(ImpliedVol, WorksForPutsAndAwayFromMoney) {
  OptionSpec o = atm();
  o.type = OptionType::kPut;
  o.strike = 140.0;
  o.vol = 0.33;
  EXPECT_NEAR(implied_vol(o, price(o)), 0.33, 1e-7);
}

TEST(ImpliedVol, RejectsArbitrageViolations) {
  const OptionSpec o = atm();
  EXPECT_THROW((void)implied_vol(o, -1.0), BadOption);
  EXPECT_THROW((void)implied_vol(o, o.spot * 1.5), BadOption);
}

TEST(ImpliedVol, HandlesNearIntrinsicPrices) {
  OptionSpec o = atm();
  o.vol = 0.01;  // almost intrinsic-only value
  const double p = price(o);
  EXPECT_NEAR(implied_vol(o, p), 0.01, 1e-5);
}

}  // namespace
}  // namespace resex::finance
